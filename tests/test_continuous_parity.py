"""Continuous-query parity suite: maintained answers equal cold evaluation.

Acceptance criteria of the subscription subsystem, as a Hypothesis property:
under interleaved insert/delete/move streams with parity checkpoints, every
standing subscription's maintained answer is **bitwise identical** to a
from-scratch ``evaluate`` of the same query over the database's current
state (the registry always runs ``draw_plan="query_keyed"``, so a cold
evaluation is reproducible regardless of stream position) — for a single
database and for sharded databases with K ∈ {2, 4} — and replaying each
subscription's emitted delta stream over its initial answer reconstructs
the final answer exactly.  A deterministic companion test pins down the
selectivity contract: a batch confined to one subscription's window (one
shard's scope) re-evaluates only the affected subscriptions, proven by the
registry's own counters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.continuous import SubscriptionRegistry, replay_deltas
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.parallel import ParallelEngine
from repro.core.queries import NearestNeighborQuery, RangeQuery, RangeQuerySpec
from repro.core.sharding import ShardedDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.region import PointObject, UncertainObject

SPACE = Rect(0.0, 0.0, 2_000.0, 2_000.0)


def _issuer(oid: int, x: float, y: float) -> UncertainObject:
    return UncertainObject.uniform(oid, Rect.from_center(Point(x, y), 60.0, 60.0))


def _subscription_pool() -> list:
    """Standing queries: three scattered geofences plus one nearest-neighbour."""
    return [
        RangeQuery.ipq(_issuer(9_001, 400.0, 400.0), RangeQuerySpec.square(250.0)),
        RangeQuery.ipq(_issuer(9_002, 1_500.0, 1_500.0), RangeQuerySpec.square(250.0)),
        RangeQuery.cipq(
            _issuer(9_003, 1_000.0, 300.0), RangeQuerySpec.square(300.0), 0.3
        ),
        NearestNeighborQuery(issuer=_issuer(9_004, 800.0, 1_200.0), samples=32),
    ]


def _base_points() -> list[PointObject]:
    return [
        PointObject.at(i, 23.0 + (i * 89.0) % 1_950.0, 41.0 + (i * 67.0) % 1_950.0)
        for i in range(60)
    ]


def _build_database(k: int):
    if k == 0:
        return PointDatabase.build(_base_points())
    return ShardedDatabase.build_points(_base_points(), k)


def _cold_answers(database, queries) -> list[dict[int, float]]:
    config = EngineConfig(draw_plan="query_keyed")
    if isinstance(database, ShardedDatabase):
        engine = ParallelEngine(point_db=database, config=config, workers=1)
    else:
        engine = ImpreciseQueryEngine(point_db=database, config=config)
    return [engine.evaluate(query).probabilities() for query in queries]


_ops = st.one_of(
    st.builds(
        lambda x, y: ("insert", x, y),
        st.floats(min_value=10.0, max_value=1_990.0),
        st.floats(min_value=10.0, max_value=1_990.0),
    ),
    st.builds(lambda i: ("delete", i), st.integers(min_value=0, max_value=59)),
    st.builds(
        lambda i, x, y: ("move", i, x, y),
        st.integers(min_value=0, max_value=59),
        st.floats(min_value=10.0, max_value=1_990.0),
        st.floats(min_value=10.0, max_value=1_990.0),
    ),
    st.just(("check",)),
)


def _run_stream(database, ops) -> None:
    """Drive the registry through ``ops``, asserting parity at checkpoints."""
    queries = _subscription_pool()
    registry = SubscriptionRegistry(point_db=database, config=EngineConfig())
    subscriptions = [registry.subscribe(query) for query in queries]
    streams = [list() for _ in subscriptions]
    live = {obj.oid for obj in _base_points()}
    next_oid = 500

    def checkpoint():
        for subscription, stream in zip(subscriptions, streams):
            stream.extend(subscription.poll())
        maintained = [subscription.answer() for subscription in subscriptions]
        assert maintained == _cold_answers(database, queries)

    for op in ops:
        if op[0] == "insert":
            database.insert(PointObject.at(next_oid, op[1], op[2]))
            live.add(next_oid)
            next_oid += 1
        elif op[0] == "delete":
            if op[1] in live and len(live) > 1:
                database.delete(op[1])
                live.discard(op[1])
        elif op[0] == "move":
            if op[1] in live:
                database.move(op[1], x=op[2], y=op[3])
        else:
            checkpoint()
    checkpoint()

    # The delta streams replay to the final maintained answers, exactly.
    for subscription, stream in zip(subscriptions, streams):
        assert replay_deltas(subscription.initial_answer(), stream) == (
            subscription.answer()
        )


class TestInterleavedStreamParity:
    @settings(max_examples=8, deadline=None)
    @given(ops=st.lists(_ops, min_size=4, max_size=20))
    def test_serial_database(self, ops):
        _run_stream(_build_database(0), ops)

    @pytest.mark.parametrize("k", [2, 4])
    @settings(max_examples=6, deadline=None)
    @given(ops=st.lists(_ops, min_size=4, max_size=20))
    def test_sharded_database(self, k, ops):
        _run_stream(_build_database(k), ops)


class TestSelectivityContract:
    def test_single_window_batch_reevaluates_only_affected_serial(self):
        database = _build_database(0)
        registry = SubscriptionRegistry(point_db=database, config=EngineConfig())
        pool = _subscription_pool()
        for query in pool:
            registry.subscribe(query)
        # Three mutations confined to the (400, 400) geofence: of the four
        # standing queries only that fence and the windowless NN are affected.
        database.insert(PointObject.at(700, 420.0, 380.0))
        database.move(700, x=380.0, y=420.0)
        database.delete(700)
        stats = registry.stats()
        assert stats["rounds"] == 1
        assert stats["reevaluations"] == 2  # the touched fence + the NN query
        assert stats["skipped"] == 2  # both remote fences proven unaffected

    @pytest.mark.parametrize("k", [2, 4])
    def test_single_shard_batch_skips_unrouted_subscriptions(self, k):
        database = _build_database(k)
        registry = SubscriptionRegistry(point_db=database, config=EngineConfig())
        range_pool = _subscription_pool()[:3]  # NN routes by best distance
        subscriptions = [registry.subscribe(query) for query in range_pool]
        touched = database.insert(PointObject.at(800, 420.0, 380.0))
        owner = database.owner_of(touched.oid).sid
        stats = registry.stats()
        routed_elsewhere = sum(
            1
            for subscription in subscriptions
            if owner
            not in {
                shard.sid for shard in database.route_window(subscription.window)
            }
        )
        # Every subscription that does not route to the mutated shard was
        # skipped via the scope-token proof; the rest re-evaluated.
        assert stats["skipped"] >= routed_elsewhere > 0
        assert stats["reevaluations"] == len(subscriptions) - stats["skipped"]
