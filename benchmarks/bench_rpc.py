"""Benchmark: distributed shard daemons vs the shared-memory pool.

Runs a sampled (Monte-Carlo, paper-250-draw) C-IPQ workload — the
issuer/range shape of ``bench_sharded.py`` at the paper's ``Qp = 0.4``
probability threshold — through three executors over identical data:

* ``single`` — one :class:`ImpreciseQueryEngine` over one database;
* ``shm_pool`` — :class:`ParallelEngine` over K spatial shards fanned out
  to W shared-memory worker processes (the PR 8 executor);
* ``distributed`` — :class:`~repro.rpc.engine.RemoteEngine` scattering
  plan-token batches over K spawned ``shardd`` daemons on loopback TCP,
  pipelined, answers returned as raw columnar frames.

All three return bitwise-identical results (asserted before anything is
timed).  ``distributed_vs_pool`` — the headline — is the sampled
throughput ratio of ``distributed`` over ``shm_pool``.  On a multi-core
machine both contenders parallelise and the ratio isolates the transport
(TCP frames vs shared-memory pipes); on a single-core container the cpu
clamp folds ``shm_pool`` back to in-process execution while the daemons
still pay real RPC per batch, so the ratio sits below 1.0 by construction
— the report marks this ``"mode": "routing_only"`` and records
``cpu_count`` so the regression guard can judge accordingly.

``rpc_bytes_per_query`` — bytes crossing the sockets per query, measured
from the pool's own accounting — is the machine-independent number: the
protocol ships a few hundred bytes of plan tokens out and packed answer
arrays back, and ``check_regression.py`` holds it under a 2 KiB ceiling
on every runner.  Most of those bytes are the answers themselves (16 B
per qualifying oid — ``answer_payload_bytes_per_query`` reports that
share), so the workload is thresholded the way a serving deployment
would threshold it; an unthresholded IPQ returning every candidate grows
the payload with result cardinality, which is data, not protocol
overhead.

Results go to ``BENCH_rpc.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_rpc.py

Environment knobs: ``REPRO_BENCH_SCALE`` (dataset scale, default 0.25),
``REPRO_BENCH_QUERIES`` (batch size, default 150), ``REPRO_BENCH_REPEATS``
(timing repetitions, default 2), ``REPRO_BENCH_SHARDS`` (default 4, also
the daemon count) and ``REPRO_BENCH_WORKERS`` (pool contender, default 4).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.parallel import ParallelEngine
from repro.core.queries import RangeQuery
from repro.core.sharding import ShardedDatabase
from repro.datasets.tiger import california_points
from repro.datasets.workload import QueryWorkload
from repro.rpc.engine import RemoteEngine
from repro.rpc.launcher import LocalShardCluster
from repro.rpc.pool import RemoteShardPool

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rpc.json"


THRESHOLD = 0.4


def _build_queries(count: int) -> list[RangeQuery]:
    workload = QueryWorkload(issuer_half_size=250.0, range_half_size=300.0, seed=4711)
    spec = workload.spec
    return [
        RangeQuery(issuer=issuer, spec=spec, threshold=THRESHOLD)
        for issuer in workload.issuers(count)
    ]


def _time_interleaved(runs: dict[str, object], repeats: int) -> dict[str, float]:
    best = {name: float("inf") for name in runs}
    for _ in range(repeats):
        for name, run in runs.items():
            started = time.perf_counter()
            run()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def main() -> None:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
    queries = int(os.environ.get("REPRO_BENCH_QUERIES", "150"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
    shards = int(os.environ.get("REPRO_BENCH_SHARDS", "4"))
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

    objects = california_points(scale=scale)
    workload = _build_queries(queries)
    sharded_db = ShardedDatabase.build_points(objects, shards)
    config = EngineConfig(
        draw_plan="per_oid", probability_method="monte_carlo", monte_carlo_samples=250
    )

    single = ImpreciseQueryEngine(point_db=PointDatabase.build(objects), config=config)
    pooled = ParallelEngine(point_db=sharded_db, config=config, workers=workers)
    cluster = LocalShardCluster.spawn(shards)
    rpc_pool = RemoteShardPool(cluster.addrs)
    remote = RemoteEngine(
        point_db=sharded_db,
        config=config,
        pool=rpc_pool,
        cluster=cluster,
        owns_pool=True,
    )
    try:
        # Spin-up, apart from query time: the pool publishes snapshots to
        # workers; the daemons receive full shard snapshots over TCP.  A
        # serving deployment pays both once, before taking traffic.
        started = time.perf_counter()
        pooled.warm()
        pool_spinup_seconds = time.perf_counter() - started
        started = time.perf_counter()
        remote.warm()
        daemon_spinup_seconds = time.perf_counter() - started

        # Correctness gate: all three executors must agree, bitwise.
        reference = single.evaluate_many(workload)
        for contender in (pooled, remote):
            evaluations = contender.evaluate_many(workload)
            for expected, got in zip(reference, evaluations):
                assert expected.probabilities() == got.probabilities(), (
                    "distributed executor diverged from the single-shard engine"
                )

        rpc_pool.reset_query_accounting()
        accounted = remote.evaluate_many(workload)
        rpc_bytes_per_query = (
            rpc_pool.query_bytes_sent + rpc_pool.query_bytes_received
        ) / len(workload)
        answers_per_query = sum(
            len(evaluation.probabilities()) for evaluation in accounted
        ) / len(workload)

        timings = _time_interleaved(
            {
                "single": lambda: single.evaluate_many(workload),
                "shm_pool": lambda: pooled.evaluate_many(workload),
                "distributed": lambda: remote.evaluate_many(workload),
            },
            repeats,
        )
    finally:
        remote.close()  # owns the pool and the cluster
        pooled.close()

    cpu_count = os.cpu_count() or 1
    report = {
        "benchmark": "rpc",
        "dataset_scale": scale,
        "objects": len(objects),
        "threshold": THRESHOLD,
        "queries": queries,
        "repeats": repeats,
        "shards": shards,
        "workers": workers,
        "workers_effective": pooled.workers,
        "cpu_count": cpu_count,
        # On one core there is nothing to parallelise over: the pool folds
        # back to in-process execution and the daemons only demonstrate
        # routing + transport, so ratios below 1.0 are expected.
        "mode": "parallel" if cpu_count > 1 else "routing_only",
        "pool_spinup_seconds": pool_spinup_seconds,
        "daemon_spinup_seconds": daemon_spinup_seconds,
        "rpc_bytes_per_query": rpc_bytes_per_query,
        # oid (int64) + probability (float64) per qualifying answer: the
        # share of the wire that is result data rather than protocol.
        "answer_payload_bytes_per_query": answers_per_query * 16.0,
        "answers_per_query": answers_per_query,
    } | {
        name: {"seconds": seconds, "queries_per_second": queries / seconds}
        for name, seconds in timings.items()
    } | {
        "distributed_vs_single": timings["single"] / timings["distributed"],
        "distributed_vs_pool": timings["shm_pool"] / timings["distributed"],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
