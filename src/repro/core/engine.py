"""End-to-end evaluation engines (Sections 4.3 and 5.3 of the paper).

The engine ties the pieces together for each query type:

1. build the expanded query range online (Minkowski sum, or the
   Qp-expanded-query for constrained queries),
2. use a spatial index to retrieve candidate objects overlapping it,
3. prune candidates with the threshold strategies of Section 5 (constrained
   queries only), and
4. compute exact (or Monte-Carlo) qualification probabilities of the
   survivors via the query–data duality formulas of Section 4.2.

Databases wrap an object collection plus the index built over it; the engine
is stateless apart from its configuration and random generator, so the same
engine can serve many queries (the experiment harness issues 500 per data
point, like the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.geometry.rect import Rect
from repro.core.duality import (
    ipq_probability,
    ipq_probability_monte_carlo,
    iuq_probability,
    iuq_probability_exact_uniform,
    iuq_probability_monte_carlo,
)
from repro.core.pruning import ALL_STRATEGIES, CIPQPruner, CIUQPruner, PruningStrategy
from repro.core.queries import ImpreciseRangeQuery, QueryResult, RangeQuerySpec
from repro.core.statistics import EvaluationStatistics
from repro.index.gridfile import GridFile
from repro.index.linear import LinearScanIndex
from repro.index.pti import ProbabilityThresholdIndex
from repro.index.rtree import RTree
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

IndexKind = Literal["rtree", "pti", "grid", "linear"]
ProbabilityMethod = Literal["auto", "exact", "monte_carlo"]


@dataclass(frozen=True)
class EngineConfig:
    """Tunable behaviour of the query engine.

    The defaults reproduce the paper's "enhanced" configuration: analytic
    probabilities where possible, p-expanded-query filtering and all three
    pruning strategies for constrained queries, and PTI-level pruning when the
    uncertain database is indexed with a PTI.
    """

    probability_method: ProbabilityMethod = "auto"
    monte_carlo_samples: int = 250
    rng_seed: int = 7
    use_p_expanded_query: bool = True
    use_pti_pruning: bool = True
    ciuq_strategies: tuple[PruningStrategy, ...] = ALL_STRATEGIES

    def with_overrides(self, **kwargs) -> "EngineConfig":
        """Return a copy of the configuration with the given fields replaced."""
        return replace(self, **kwargs)


def _build_index(
    items: Sequence, kind: IndexKind, *, bounds: Rect | None, **index_kwargs
):
    """Construct the requested index kind over ``items``."""
    if kind == "rtree":
        return RTree.bulk_load(items, **index_kwargs)
    if kind == "pti":
        return ProbabilityThresholdIndex.bulk_load(items, **index_kwargs)
    if kind == "grid":
        if bounds is None:
            bounds = Rect.bounding([item.mbr for item in items])
        return GridFile.bulk_load(items, bounds=bounds, **index_kwargs)
    if kind == "linear":
        return LinearScanIndex.bulk_load(items, **index_kwargs)
    raise ValueError(f"unknown index kind: {kind!r}")


@dataclass
class PointDatabase:
    """A collection of point objects plus the spatial index built over them."""

    objects: list[PointObject]
    index: RTree | GridFile | LinearScanIndex
    kind: IndexKind = "rtree"

    @classmethod
    def build(
        cls,
        objects: Iterable[PointObject],
        *,
        index_kind: IndexKind = "rtree",
        bounds: Rect | None = None,
        **index_kwargs,
    ) -> "PointDatabase":
        """Index a point-object collection (R-tree by default, as in the paper)."""
        materialised = list(objects)
        if index_kind == "pti":
            raise ValueError("the PTI only stores uncertain objects")
        index = _build_index(materialised, index_kind, bounds=bounds, **index_kwargs)
        return cls(objects=materialised, index=index, kind=index_kind)

    def __len__(self) -> int:
        return len(self.objects)


@dataclass
class UncertainDatabase:
    """A collection of uncertain objects plus the index built over them."""

    objects: list[UncertainObject]
    index: RTree | ProbabilityThresholdIndex | GridFile | LinearScanIndex
    kind: IndexKind = "pti"

    @classmethod
    def build(
        cls,
        objects: Iterable[UncertainObject],
        *,
        index_kind: IndexKind = "pti",
        catalog_levels: Sequence[float] | None = DEFAULT_CATALOG_LEVELS,
        bounds: Rect | None = None,
        **index_kwargs,
    ) -> "UncertainDatabase":
        """Index an uncertain-object collection.

        When ``catalog_levels`` is given, every object missing a U-catalog
        gets one built at those levels (the PTI requires catalogs; the plain
        R-tree merely benefits from them during object-level pruning).
        """
        materialised = list(objects)
        if catalog_levels is not None:
            materialised = [
                obj if obj.catalog is not None else obj.with_catalog(catalog_levels)
                for obj in materialised
            ]
        index = _build_index(materialised, index_kind, bounds=bounds, **index_kwargs)
        return cls(objects=materialised, index=index, kind=index_kind)

    def __len__(self) -> int:
        return len(self.objects)


class ImpreciseQueryEngine:
    """Evaluates IPQ, IUQ, C-IPQ and C-IUQ over indexed databases."""

    def __init__(
        self,
        *,
        point_db: PointDatabase | None = None,
        uncertain_db: UncertainDatabase | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        if point_db is None and uncertain_db is None:
            raise ValueError("the engine needs at least one database to query")
        self._point_db = point_db
        self._uncertain_db = uncertain_db
        self._config = config if config is not None else EngineConfig()
        self._rng = np.random.default_rng(self._config.rng_seed)

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def point_db(self) -> PointDatabase | None:
        """The point-object database, if any."""
        return self._point_db

    @property
    def uncertain_db(self) -> UncertainDatabase | None:
        """The uncertain-object database, if any."""
        return self._uncertain_db

    # ------------------------------------------------------------------ #
    # Probability dispatch
    # ------------------------------------------------------------------ #
    def _use_monte_carlo(self, issuer: UncertainObject) -> bool:
        method = self._config.probability_method
        if method == "monte_carlo":
            return True
        if method == "exact":
            return False
        return not issuer.pdf.has_closed_form

    def _point_probability(
        self,
        issuer: UncertainObject,
        obj: PointObject,
        spec: RangeQuerySpec,
        stats: EvaluationStatistics,
    ) -> float:
        stats.probability_computations += 1
        if self._use_monte_carlo(issuer):
            samples = self._config.monte_carlo_samples
            stats.monte_carlo_samples += samples
            return ipq_probability_monte_carlo(
                issuer.pdf, spec, obj.location, samples, self._rng
            )
        return ipq_probability(issuer.pdf, spec, obj.location)

    def _uncertain_probability(
        self,
        issuer: UncertainObject,
        obj: UncertainObject,
        spec: RangeQuerySpec,
        stats: EvaluationStatistics,
    ) -> float:
        stats.probability_computations += 1
        method = self._config.probability_method
        exact_possible = isinstance(issuer.pdf, UniformPdf) and isinstance(obj.pdf, UniformPdf)
        if method == "monte_carlo" or (method == "auto" and not exact_possible):
            samples = self._config.monte_carlo_samples
            stats.monte_carlo_samples += samples
            return iuq_probability_monte_carlo(issuer.pdf, obj, spec, samples, self._rng)
        if exact_possible:
            return iuq_probability_exact_uniform(issuer.pdf, obj, spec)
        # method == "exact" but no closed form: fall back to the semi-analytic
        # deterministic grid so results stay reproducible.
        return iuq_probability(issuer.pdf, obj, spec, grid_resolution=24)

    # ------------------------------------------------------------------ #
    # Queries over point objects
    # ------------------------------------------------------------------ #
    def evaluate_ipq(
        self, issuer: UncertainObject, spec: RangeQuerySpec
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Imprecise range query over point objects (Definition 3)."""
        return self.evaluate_cipq(issuer, spec, threshold=0.0)

    def evaluate_cipq(
        self, issuer: UncertainObject, spec: RangeQuerySpec, threshold: float
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Constrained imprecise range query over point objects (Definition 5)."""
        if self._point_db is None:
            raise RuntimeError("no point-object database configured")
        started = time.perf_counter()
        stats = EvaluationStatistics()
        pruner = CIPQPruner(
            issuer,
            spec,
            threshold,
            use_p_expanded_query=self._config.use_p_expanded_query,
        )
        index = self._point_db.index
        before = index.stats.snapshot()
        candidates = index.range_search(pruner.filter_region)
        stats.io = index.stats.difference_since(before)
        stats.candidates_examined = len(candidates)

        result = QueryResult()
        for obj in candidates:
            decision = pruner.decide(obj)
            if decision.pruned:
                stats.record_pruned(decision.strategy or "filter")
                continue
            probability = self._point_probability(issuer, obj, spec, stats)
            if probability > 0.0 and probability >= threshold:
                result.add(obj.oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    # ------------------------------------------------------------------ #
    # Queries over uncertain objects
    # ------------------------------------------------------------------ #
    def evaluate_iuq(
        self, issuer: UncertainObject, spec: RangeQuerySpec
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Imprecise range query over uncertain objects (Definition 4)."""
        return self.evaluate_ciuq(issuer, spec, threshold=0.0)

    def evaluate_ciuq(
        self, issuer: UncertainObject, spec: RangeQuerySpec, threshold: float
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Constrained imprecise range query over uncertain objects (Definition 6)."""
        if self._uncertain_db is None:
            raise RuntimeError("no uncertain-object database configured")
        started = time.perf_counter()
        stats = EvaluationStatistics()
        pruner = CIUQPruner(
            issuer,
            spec,
            threshold,
            strategies=self._config.ciuq_strategies,
        )
        index = self._uncertain_db.index
        before = index.stats.snapshot()
        candidates, residual_strategies = self._retrieve_uncertain_candidates(
            index, pruner, threshold
        )
        stats.io = index.stats.difference_since(before)
        stats.candidates_examined = len(candidates)

        result = QueryResult()
        for obj in candidates:
            decision = pruner.decide(obj, strategies=residual_strategies)
            if decision.pruned:
                stats.record_pruned(decision.strategy or "filter")
                continue
            probability = self._uncertain_probability(issuer, obj, spec, stats)
            if probability > 0.0 and probability >= threshold:
                result.add(obj.oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    def _retrieve_uncertain_candidates(
        self, index, pruner: CIUQPruner, threshold: float
    ) -> tuple[list[UncertainObject], tuple[PruningStrategy, ...]]:
        """Index filter step for (C-)IUQ.

        * PTI with threshold pruning enabled: node-level Strategy-1 pruning
          against the Minkowski window plus Strategy-2 pruning against the
          Qp-expanded-query (Figure 12's "PTI + p-expanded-query").  The
          strategies the index already applied per entry are removed from the
          per-object pass — re-running them would test the exact same
          rounded-level conditions on the exact same rectangles.
        * Any other index: a plain window query using the Qp-expanded-query
          when enabled, otherwise the Minkowski sum.

        Returns the candidates and the strategies still to be applied per
        object.
        """
        configured = self._config.ciuq_strategies
        use_pti = (
            isinstance(index, ProbabilityThresholdIndex)
            and self._config.use_pti_pruning
            and threshold > 0.0
        )
        if use_pti:
            p_window = (
                pruner.qp_expanded_region if self._config.use_p_expanded_query else None
            )
            candidates = index.range_search_with_threshold(
                pruner.minkowski_region, threshold, p_window
            )
            applied = {PruningStrategy.P_BOUND}
            if p_window is not None:
                applied.add(PruningStrategy.P_EXPANDED_QUERY)
            residual = tuple(s for s in configured if s not in applied)
            return candidates, residual
        window = (
            pruner.qp_expanded_region
            if self._config.use_p_expanded_query
            else pruner.minkowski_region
        )
        candidates = index.range_search(window)
        if self._config.use_p_expanded_query and threshold > 0.0:
            # The window query already discarded objects outside the
            # Qp-expanded-query, i.e. it applied Strategy 2.
            residual = tuple(
                s for s in configured if s is not PruningStrategy.P_EXPANDED_QUERY
            )
            return candidates, residual
        return candidates, configured

    # ------------------------------------------------------------------ #
    # Convenience entry point
    # ------------------------------------------------------------------ #
    def evaluate(
        self, query: ImpreciseRangeQuery, *, over: Literal["points", "uncertain"]
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Evaluate a fully specified query object over the chosen database."""
        if over == "points":
            return self.evaluate_cipq(query.issuer, query.spec, query.threshold)
        if over == "uncertain":
            return self.evaluate_ciuq(query.issuer, query.spec, query.threshold)
        raise ValueError(f"unknown target database: {over!r}")
