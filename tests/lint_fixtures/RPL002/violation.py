# lint-fixture-path: repro/core/example.py
"""Global RNG state and an unseeded generator in core/."""

import random

import numpy as np


def jitter(values):
    np.random.seed(7)
    noise = np.random.rand(len(values))
    rng = np.random.default_rng()
    return values + noise + rng.random() + random.random()
