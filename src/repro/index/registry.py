"""Pluggable registry of spatial-index backends.

The engine used to hard-code index construction in an if/elif chain, which
meant adding a backend required editing the engine itself.  The registry
replaces that chain with a data-driven lookup: every backend is registered
under a short name together with a :class:`IndexCapabilities` record, and
database builders validate an index choice against those capabilities
instead of ad-hoc isinstance checks.  Third-party backends drop in with a
single :func:`register_index` call::

    register_index(
        "quadtree",
        QuadTree.bulk_load,
        capabilities=IndexCapabilities(supports_points=True, supports_uncertain=True),
    )
    PointDatabase.build(objects, index_kind="quadtree")

The four seed backends (R-tree, PTI, grid file, linear scan) are registered
when :mod:`repro.index` is imported.
"""

from __future__ import annotations
from repro.errors import SpatialIndexError

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.geometry.rect import Rect
from repro.index.base import extract_mbr

#: A ``bulk_load``-style constructor: ``loader(items, **kwargs) -> index``.
IndexLoader = Callable[..., Any]


@dataclass(frozen=True)
class IndexCapabilities:
    """What a registered index backend can do.

    Database builders consult these flags instead of hard-coding knowledge
    about concrete index classes.
    """

    #: The backend can store point objects.
    supports_points: bool = True
    #: The backend can store uncertain objects.
    supports_uncertain: bool = True
    #: The backend prunes entries against a probability threshold at the
    #: node level (the PTI of Cheng et al., VLDB 2004).
    supports_probability_pruning: bool = False
    #: The backend needs the bounding rectangle of the data space at build
    #: time (e.g. the grid file); when the caller does not supply one, the
    #: registry computes it from the items' MBRs.
    requires_bounds: bool = False
    #: The backend implements incremental ``delete``/``update`` (the
    #: :class:`repro.index.base.SpatialIndex` maintenance surface).  Defaults
    #: to ``False`` so third-party backends without a delete path get the
    #: databases' rebuild fallback instead of an ``AttributeError`` mid
    #: mutation; all four seed backends set it to ``True``.
    supports_delete: bool = False
    #: The backend can be built independently per spatial shard (one index
    #: per partition, seeing only that partition's objects).  All four seed
    #: backends qualify; a backend whose construction needs global statistics
    #: (e.g. a learned index trained on the full distribution) should set
    #: this to ``False`` so :class:`repro.core.sharding.ShardedDatabase`
    #: rejects it up front instead of silently building skewed shards.
    supports_shard_build: bool = True


@dataclass(frozen=True)
class IndexBackend:
    """One registered backend: a name, a constructor, and its capabilities."""

    name: str
    loader: IndexLoader
    capabilities: IndexCapabilities = field(default_factory=IndexCapabilities)


_REGISTRY: dict[str, IndexBackend] = {}


def register_index(
    name: str,
    loader: IndexLoader,
    *,
    capabilities: IndexCapabilities | None = None,
    replace: bool = False,
) -> IndexBackend:
    """Register an index backend under ``name`` and return its record.

    ``loader`` is a ``bulk_load``-style callable taking the item sequence
    plus backend-specific keyword arguments.  Registering an existing name
    raises unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise SpatialIndexError(f"index backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise SpatialIndexError(
            f"index backend {name!r} is already registered; pass replace=True to override"
        )
    backend = IndexBackend(
        name=name,
        loader=loader,
        capabilities=capabilities if capabilities is not None else IndexCapabilities(),
    )
    _REGISTRY[name] = backend
    return backend


def unregister_index(name: str) -> None:
    """Remove a registered backend (no-op when the name is unknown)."""
    _REGISTRY.pop(name, None)


def available_indexes() -> tuple[str, ...]:
    """Names of all registered backends, in registration order."""
    return tuple(_REGISTRY)


def get_index_backend(name: str) -> IndexBackend:
    """Look up a backend by name, with a helpful error for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise SpatialIndexError(
            f"unknown index kind: {name!r} (registered backends: {known})"
        ) from None


def build_index(
    items: Iterable[Any] | Sequence[Any],
    kind: str,
    *,
    bounds: Rect | None = None,
    **index_kwargs,
):
    """Construct the registered index ``kind`` over ``items``.

    Centralises the empty-input check (every backend would otherwise fail
    deep inside MBR computations with an opaque error) and the data-space
    bounds computation for backends that require one.
    """
    backend = get_index_backend(kind)
    materialised = items if isinstance(items, Sequence) else list(items)
    if not materialised:
        raise SpatialIndexError("cannot index an empty collection")
    if backend.capabilities.requires_bounds:
        if bounds is None:
            bounds = Rect.bounding([extract_mbr(item) for item in materialised])
        index_kwargs["bounds"] = bounds
    return backend.loader(materialised, **index_kwargs)


def _register_seed_backends() -> None:
    """Register the four backends shipped with the reproduction."""
    from repro.index.gridfile import GridFile
    from repro.index.linear import LinearScanIndex
    from repro.index.pti import ProbabilityThresholdIndex
    from repro.index.rtree import RTree

    register_index(
        "rtree",
        RTree.bulk_load,
        capabilities=IndexCapabilities(
            supports_points=True, supports_uncertain=True, supports_delete=True
        ),
        replace=True,
    )
    register_index(
        "pti",
        ProbabilityThresholdIndex.bulk_load,
        capabilities=IndexCapabilities(
            supports_points=False,
            supports_uncertain=True,
            supports_probability_pruning=True,
            supports_delete=True,
        ),
        replace=True,
    )
    register_index(
        "grid",
        GridFile.bulk_load,
        capabilities=IndexCapabilities(
            supports_points=True,
            supports_uncertain=True,
            requires_bounds=True,
            supports_delete=True,
        ),
        replace=True,
    )
    register_index(
        "linear",
        LinearScanIndex.bulk_load,
        capabilities=IndexCapabilities(
            supports_points=True, supports_uncertain=True, supports_delete=True
        ),
        replace=True,
    )


_register_seed_backends()
