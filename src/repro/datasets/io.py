"""Plain-text persistence for datasets.

Datasets are saved in small line-oriented text formats so that generated
stand-ins can be inspected, versioned, or replaced with real TIGER extracts
converted to the same format:

* point objects: ``oid x y`` per line;
* uncertain objects (uniform pdf): ``oid xmin ymin xmax ymax`` per line.

Lines starting with ``#`` are comments.
"""

from __future__ import annotations
from repro.errors import DatasetError, InvalidArgumentError

from pathlib import Path
from typing import Iterable

from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject


def save_point_objects(objects: Iterable[PointObject], path: str | Path) -> None:
    """Write point objects to ``path`` (one ``oid x y`` line per object)."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        handle.write("# oid x y\n")
        for obj in objects:
            handle.write(f"{obj.oid} {obj.x!r} {obj.y!r}\n")


def load_point_objects(path: str | Path) -> list[PointObject]:
    """Read point objects written by :func:`save_point_objects`."""
    source = Path(path)
    objects: list[PointObject] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise DatasetError(f"{source}:{line_number}: expected 'oid x y', got {line!r}")
            oid, x, y = int(parts[0]), float(parts[1]), float(parts[2])
            objects.append(PointObject.at(oid, x, y))
    return objects


def save_uncertain_objects(objects: Iterable[UncertainObject], path: str | Path) -> None:
    """Write uncertain objects (uniform pdfs) as ``oid xmin ymin xmax ymax`` lines.

    Only the uncertainty regions are stored; non-uniform pdfs cannot be
    serialised by this format and raise ``TypeError``.
    """
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        handle.write("# oid xmin ymin xmax ymax\n")
        for obj in objects:
            if not isinstance(obj.pdf, UniformPdf):
                raise InvalidArgumentError(
                    f"object {obj.oid}: only uniform pdfs can be saved in this format"
                )
            region = obj.region
            handle.write(
                f"{obj.oid} {region.xmin!r} {region.ymin!r} {region.xmax!r} {region.ymax!r}\n"
            )


def load_uncertain_objects(
    path: str | Path, *, with_catalog: bool = False
) -> list[UncertainObject]:
    """Read uncertain objects written by :func:`save_uncertain_objects`."""
    source = Path(path)
    objects: list[UncertainObject] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 5:
                raise DatasetError(
                    f"{source}:{line_number}: expected 'oid xmin ymin xmax ymax', got {line!r}"
                )
            oid = int(parts[0])
            region = Rect(float(parts[1]), float(parts[2]), float(parts[3]), float(parts[4]))
            objects.append(
                UncertainObject.uniform(oid, region, with_catalog=with_catalog)
            )
    return objects
