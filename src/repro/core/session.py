"""Fluent session facade over the query engine.

A :class:`Session` wraps databases, configuration and an
:class:`~repro.core.engine.ImpreciseQueryEngine` behind builder-style query
construction, so examples and the experiment harness stop hand-wiring
engines::

    session = Session.from_objects(points=restaurants, uncertain=taxis)
    evaluation = (
        session.range(half_width=500.0)
        .targets("uncertain")
        .threshold(0.5)
        .issued_by(rider)
        .run()
    )

Builders are immutable: every fluent call returns a new builder, so a
partially configured builder can be reused as a template for many queries
(e.g. one issuer per workload query via :meth:`RangeQueryBuilder.run_many`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.core.cache import ResultCache
from repro.core.continuous import AnswerDelta, Subscription, SubscriptionRegistry
from repro.core.errors import ConfigurationError, InvalidQueryError
from repro.core.engine import (
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.parallel import ParallelEngine
from repro.core.sharding import ShardedDatabase
from repro.core.queries import (
    Evaluation,
    NearestNeighborQuery,
    Query,
    RangeQuery,
    RangeQuerySpec,
    RangeQueryTarget,
)
from repro.core.updates import UpdateBatch
from repro.geometry.rect import Rect
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS
from repro.uncertainty.region import PointObject, UncertainObject


class Session:
    """A configured query surface: databases + engine + fluent builders."""

    def __init__(
        self,
        *,
        point_db: PointDatabase | None = None,
        uncertain_db: UncertainDatabase | None = None,
        config: EngineConfig | None = None,
        engine: ImpreciseQueryEngine | ParallelEngine | None = None,
    ) -> None:
        if engine is not None:
            if point_db is not None or uncertain_db is not None or config is not None:
                raise ConfigurationError(
                    "pass either a prebuilt engine or databases/config, not both"
                )
            self._engine = engine
        else:
            self._engine = ImpreciseQueryEngine(
                point_db=point_db, uncertain_db=uncertain_db, config=config
            )
        self._subscriptions: SubscriptionRegistry | None = None

    @classmethod
    def from_objects(
        cls,
        *,
        points: Iterable[PointObject] | None = None,
        uncertain: Iterable[UncertainObject] | None = None,
        point_index: str = "rtree",
        uncertain_index: str = "pti",
        catalog_levels: Sequence[float] | None = DEFAULT_CATALOG_LEVELS,
        bounds: Rect | None = None,
        config: EngineConfig | None = None,
    ) -> "Session":
        """Build databases from raw object collections and wrap them in a session."""
        point_db = (
            PointDatabase.build(points, index_kind=point_index, bounds=bounds)
            if points is not None
            else None
        )
        uncertain_db = (
            UncertainDatabase.build(
                uncertain,
                index_kind=uncertain_index,
                catalog_levels=catalog_levels,
                bounds=bounds,
            )
            if uncertain is not None
            else None
        )
        return cls(point_db=point_db, uncertain_db=uncertain_db, config=config)

    @property
    def engine(self) -> ImpreciseQueryEngine | ParallelEngine:
        """The underlying query engine."""
        return self._engine

    @property
    def point_db(self) -> PointDatabase | ShardedDatabase | None:
        """The point-object database (sharded for sharded sessions), if any."""
        return self._engine.point_db

    @property
    def uncertain_db(self) -> UncertainDatabase | ShardedDatabase | None:
        """The uncertain-object database (sharded for sharded sessions), if any."""
        return self._engine.uncertain_db

    def sharded(
        self,
        k: int,
        *,
        workers: int | None = None,
        partitioner: str = "grid",
        hot_threshold: int | None = None,
    ) -> "Session":
        """A new session running this session's data shard-parallel.

        The databases are partitioned into ``k`` spatial shards (``"grid"``
        or ``"median"`` splits), each with its own index of the same kind as
        the original database, and queries execute through a
        :class:`~repro.core.parallel.ParallelEngine` with ``workers``
        processes (1 = serial in-process).  Every existing workload runs
        unchanged on the sharded session; results are identical to a
        single-shard engine configured with the per-oid draw plan
        (``EngineConfig(draw_plan="per_oid")``), which sharded execution
        forces — Monte-Carlo probabilities match bitwise.

        ``hot_threshold`` arms in-place re-splitting: a shard that grows past
        that many members under live inserts is split into two without
        rebuilding its siblings.

        With ``workers > 1`` the engine feeds a persistent worker pool
        through **named shared-memory blocks** (shard snapshots out, packed
        answer arrays back — see :mod:`repro.core.shm`).  Those blocks live
        in the OS shared-memory namespace (``/dev/shm`` on Linux), not the
        Python heap: call ``session.engine.close()`` — or use the engine as
        a context manager — when done, so the pool shuts down and every
        block is unlinked.  Engines dropped without ``close()`` clean up via
        finalizers, and mutations never strand blocks (a republished shard's
        superseded block is unlinked once its last in-flight task ends); the
        one way to leak a segment is killing the parent process outright,
        after which ``psq{pid}-…`` entries in ``/dev/shm`` can be removed by
        hand.
        """
        sharded_points, sharded_uncertain, config = self._reshard(
            k, partitioner=partitioner, hot_threshold=hot_threshold
        )
        engine = ParallelEngine(
            point_db=sharded_points,
            uncertain_db=sharded_uncertain,
            config=config,
            workers=workers,
        )
        return Session(engine=engine)

    def _reshard(
        self, k: int, *, partitioner: str, hot_threshold: int | None
    ) -> tuple[ShardedDatabase | None, ShardedDatabase | None, EngineConfig]:
        """Partition this session's data into ``k`` shards per database.

        Shared by :meth:`sharded` and :meth:`distributed`.  Also resolves
        the engine configuration: the streaming draw plan is replaced with
        the position-independent per-oid plan sharded execution requires.
        """
        point_db = self._engine.point_db
        uncertain_db = self._engine.uncertain_db
        sharded_points = None
        if point_db is not None:
            index_kind = (
                point_db.index_kind
                if isinstance(point_db, ShardedDatabase)
                else point_db.kind
            )
            sharded_points = ShardedDatabase.build_points(
                point_db.objects,
                k,
                partitioner=partitioner,
                index_kind=index_kind,
                hot_threshold=hot_threshold,
            )
        sharded_uncertain = None
        if uncertain_db is not None:
            index_kind = (
                uncertain_db.index_kind
                if isinstance(uncertain_db, ShardedDatabase)
                else uncertain_db.kind
            )
            # Objects coming out of a built database already carry whatever
            # catalogs the original construction attached.
            sharded_uncertain = ShardedDatabase.build_uncertain(
                uncertain_db.objects,
                k,
                partitioner=partitioner,
                index_kind=index_kind,
                catalog_levels=None,
                hot_threshold=hot_threshold,
            )
        config = self._engine.config
        if config.draw_plan == "stream":
            config = config.with_overrides(draw_plan="per_oid")
        return sharded_points, sharded_uncertain, config

    def distributed(
        self,
        k: int | None = None,
        *,
        addrs: Sequence[tuple[str, int]] | None = None,
        partitioner: str = "grid",
    ) -> "Session":
        """A new session scattering this session's data over shard daemons.

        The databases are partitioned exactly like :meth:`sharded` and each
        shard's snapshot is shipped to one ``shardd`` worker process
        (:mod:`repro.rpc.shardd`).  Queries run through a
        :class:`~repro.rpc.engine.RemoteEngine`: routed plan-token batches
        scatter over persistent pipelined connections, the packed answer
        arrays gather back, and the merge is the parallel engine's —
        answers are bitwise-identical to the serial per-oid engine.

        ``addrs`` connects to already-running daemons (``(host, port)``
        pairs, one per shard, in shard-id order; ``k`` defaults to their
        count).  Without ``addrs``, ``k`` local daemons are spawned and
        owned by the returned session's engine — ``session.engine.close()``
        shuts them down along with the connections.

        Mutations through the returned session apply locally and mirror to
        the one owning daemon, whose reply epoch keeps the engine's
        epoch-vector cache keys coherent without broadcast invalidation.
        """
        from repro.rpc.engine import RemoteEngine
        from repro.rpc.pool import RemoteShardPool

        if addrs is not None:
            if k is None:
                k = len(addrs)
            elif k != len(addrs):
                raise ConfigurationError(
                    f"k={k} does not match the {len(addrs)} daemon addresses"
                )
        elif k is None:
            raise ConfigurationError(
                "distributed() needs a shard count k or an explicit addrs list"
            )
        sharded_points, sharded_uncertain, config = self._reshard(
            k, partitioner=partitioner, hot_threshold=None
        )
        cluster = None
        if addrs is None:
            from repro.rpc.launcher import LocalShardCluster

            cluster = LocalShardCluster.spawn(k)
            addrs = cluster.addrs
        try:
            engine = RemoteEngine(
                point_db=sharded_points,
                uncertain_db=sharded_uncertain,
                config=config,
                pool=RemoteShardPool(addrs),
                cluster=cluster,
                owns_pool=True,
            )
        except BaseException:
            if cluster is not None:
                cluster.close()
            raise
        return Session(engine=engine)

    def cached(self, capacity: int = 1024) -> "Session":
        """A new session serving repeated queries from an epoch-keyed result cache.

        The returned session shares this session's databases (mutations
        through either session are seen by both — the epoch counters keep
        every consumer consistent) but runs with a fresh
        :class:`~repro.core.cache.ResultCache` of the given ``capacity``
        threaded through the query pipeline.  Sessions on the default
        streaming draw plan are switched to ``draw_plan="query_keyed"`` so
        that *sampled* answers are cacheable too: under that plan a query's
        Monte-Carlo draws depend only on its content, never on its position
        in the workload, so a cache hit is bitwise-identical to recomputing.
        A session already on ``"per_oid"`` keeps its plan (preserving
        sharded-parity replay semantics); there only draw-free answers are
        cached.

        Monitor hit rates via :meth:`stats`.
        """
        overrides: dict[str, Any] = {"cache": ResultCache(capacity=capacity)}
        if self._engine.config.draw_plan == "stream":
            overrides["draw_plan"] = "query_keyed"
        return self.with_config(**overrides)

    def with_config(self, **overrides: Any) -> "Session":
        """A new session sharing this session's databases under a tweaked config.

        ``overrides`` are :class:`~repro.core.engine.EngineConfig` field
        overrides (``draw_plan=...``, ``cache=...``, ...).  Both sessions see
        each other's mutations — the databases are the same objects — but
        each evaluates with its own configuration.  Parallel sessions keep
        their worker count (the new engine spins up its own pool).
        """
        config = self._engine.config.with_overrides(**overrides)
        if isinstance(self._engine, ParallelEngine):
            # Polymorphic: a RemoteEngine reconfigures over the same daemons
            # instead of silently downgrading to a local pool.
            engine: ImpreciseQueryEngine | ParallelEngine = (
                self._engine.reconfigured(config)
            )
        else:
            engine = ImpreciseQueryEngine(
                point_db=self._engine.point_db,
                uncertain_db=self._engine.uncertain_db,
                config=config,
            )
        return Session(engine=engine)

    def describe(self) -> dict[str, Any]:
        """A JSON-safe snapshot of the session's configuration and counters.

        Wraps :meth:`stats` with the engine kind, worker count, the
        :class:`~repro.core.engine.EngineConfig` fields and each configured
        database's shape — the payload the serving front-end returns for a
        ``stats`` request, so clients can introspect a live server.
        """
        config = self._engine.config
        parallel = isinstance(self._engine, ParallelEngine)
        databases: dict[str, Any] = {}
        for name, database in (
            ("points", self._engine.point_db),
            ("uncertain", self._engine.uncertain_db),
        ):
            if database is None:
                continue
            entry: dict[str, Any] = {
                "objects": len(database),
                "index": database.index_kind
                if isinstance(database, ShardedDatabase)
                else database.kind,
            }
            if isinstance(database, ShardedDatabase):
                entry["shards"] = database.k
                entry["partitioner"] = database.partitioner
            databases[name] = entry
        stats = self.stats()
        epochs = {
            name: {str(sid): epoch for sid, epoch in value.items()}
            if isinstance(value, dict)
            else value
            for name, value in stats.epochs.items()
        }
        engine_entry: dict[str, Any] = {
            "kind": self._engine.engine_kind,
            "workers": self._engine.workers if parallel else 1,
        }
        if self._engine.engine_kind == "distributed":
            engine_entry["daemons"] = len(self._engine.pool.addrs)
        return {
            "engine": engine_entry,
            "config": {
                "probability_method": config.probability_method,
                "monte_carlo_samples": config.monte_carlo_samples,
                "rng_seed": config.rng_seed,
                "use_p_expanded_query": config.use_p_expanded_query,
                "use_pti_pruning": config.use_pti_pruning,
                "ciuq_strategies": [s.value for s in config.ciuq_strategies],
                "vectorized": config.vectorized,
                "draw_plan": config.draw_plan,
                "cache_capacity": config.cache.capacity if config.cache else None,
            },
            "databases": databases,
            "stats": {
                "cache": stats.cache,
                "epochs": epochs,
                "subscriptions": stats.subscriptions,
            },
        }

    def stats(self) -> "SessionStats":
        """A snapshot of the session's serving counters.

        Bundles the result cache's hit/miss/eviction counters (``None``
        when the session runs uncached) with the current database epoch —
        or, for sharded sessions, the per-shard epoch vector — so serving
        workloads can monitor hit rate and watch invalidation happen.
        """
        cache = self._engine.config.cache
        cache_stats = None
        if cache is not None:
            cache_stats = dict(cache.stats.as_dict())
            cache_stats["entries"] = len(cache)
            cache_stats["capacity"] = cache.capacity
        epochs: dict[str, Any] = {}
        for name, database in (
            ("points", self._engine.point_db),
            ("uncertain", self._engine.uncertain_db),
        ):
            if database is None:
                continue
            if isinstance(database, ShardedDatabase):
                epochs[name] = dict(database.epochs())
            else:
                epochs[name] = database.epoch
        subscriptions = (
            self._subscriptions.stats() if self._subscriptions is not None else None
        )
        return SessionStats(
            cache=cache_stats, epochs=epochs, subscriptions=subscriptions
        )

    # ------------------------------------------------------------------ #
    # Continuous queries
    # ------------------------------------------------------------------ #
    def subscriptions(self) -> SubscriptionRegistry:
        """The session's :class:`SubscriptionRegistry` (created on first use).

        The registry shares the session's databases and observes every
        mutation made through this session (or any other consumer of the
        same database objects).
        """
        if self._subscriptions is None:
            self._subscriptions = SubscriptionRegistry(
                point_db=self._engine.point_db,
                uncertain_db=self._engine.uncertain_db,
                config=self._engine.config,
            )
        return self._subscriptions

    def subscribe(self, query: Query) -> Subscription:
        """Register a standing query and return its :class:`Subscription`.

        The handle's :meth:`~repro.core.continuous.Subscription.answer` is
        maintained incrementally as the session mutates; drain its ordered
        ``JOIN``/``LEAVE``/``SCORE_CHANGE`` deltas via
        :meth:`~repro.core.continuous.Subscription.poll` (per subscription)
        or :meth:`poll_deltas` (session-wide).
        """
        return self.subscriptions().subscribe(query)

    def unsubscribe(self, subscription: Subscription | int) -> None:
        """Cancel a standing query (by handle or id)."""
        self.subscriptions().unsubscribe(subscription)

    def poll_deltas(self) -> list[AnswerDelta]:
        """Drain all subscriptions' queued deltas as one ordered stream."""
        if self._subscriptions is None:
            return []
        return self._subscriptions.poll()

    def _pump_subscriptions(self) -> None:
        if self._subscriptions is not None:
            self._subscriptions.pump()

    # ------------------------------------------------------------------ #
    # Fluent builders
    # ------------------------------------------------------------------ #
    def range(
        self, *, half_width: float, half_height: float | None = None
    ) -> "RangeQueryBuilder":
        """Start building a range query (square when ``half_height`` is omitted).

        The target defaults to the only database the session holds; sessions
        with both databases must pick one via :meth:`RangeQueryBuilder.targets`.
        """
        spec = RangeQuerySpec(
            half_width, half_width if half_height is None else half_height
        )
        return RangeQueryBuilder(session=self, spec=spec, target=self._default_target())

    def nearest(self, *, samples: int | None = None) -> "NearestNeighborQueryBuilder":
        """Start building an imprecise nearest-neighbour query."""
        return NearestNeighborQueryBuilder(session=self, samples=samples)

    def _default_target(self) -> RangeQueryTarget | None:
        if self._engine.point_db is not None and self._engine.uncertain_db is None:
            return "points"
        if self._engine.uncertain_db is not None and self._engine.point_db is None:
            return "uncertain"
        return None

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def insert(self, obj: PointObject | UncertainObject):
        """Add one object to the session's matching database (live, no rebuild).

        Returns the stored object (uncertain objects may gain a U-catalog).
        """
        stored = self._engine.insert(obj)
        self._pump_subscriptions()
        return stored

    def delete(self, oid: int, *, target: str | None = None):
        """Remove one object by oid; ``target`` picks the database when both exist.

        Returns the removed object.
        """
        removed = self._engine.delete(oid, target=target)
        self._pump_subscriptions()
        return removed

    def move(
        self,
        oid: int,
        *,
        x: float | None = None,
        y: float | None = None,
        pdf=None,
        target: str | None = None,
    ):
        """Relocate one object: ``x``/``y`` for a point, ``pdf`` for an uncertain one.

        Returns the stored replacement object.
        """
        moved = self._engine.move(oid, x=x, y=y, pdf=pdf, target=target)
        self._pump_subscriptions()
        return moved

    def apply_updates(self, batch: UpdateBatch) -> None:
        """Apply an ordered :class:`UpdateBatch` to the session's databases.

        Standing subscriptions settle once per batch: each affected
        subscription re-evaluates a single time no matter how many of the
        batch's operations touched it.
        """
        self._engine.apply_updates(batch)
        self._pump_subscriptions()

    # ------------------------------------------------------------------ #
    # Direct execution
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Query) -> Evaluation:
        """Evaluate one query object."""
        return self._engine.evaluate(query)

    def evaluate_many(self, queries: Iterable[Query | UpdateBatch]) -> list[Evaluation]:
        """Evaluate a batch of query objects, preserving input order.

        :class:`UpdateBatch` items may be interleaved with the queries; each
        is applied at its position in the stream and yields no evaluation.
        """
        evaluations = self._engine.evaluate_many(queries)
        self._pump_subscriptions()
        return evaluations


@dataclass(frozen=True)
class SessionStats:
    """Serving counters reported by :meth:`Session.stats`.

    ``cache`` is ``None`` for uncached sessions; otherwise a dict with
    ``hits`` / ``misses`` / ``evictions`` / ``hit_rate`` / ``entries`` /
    ``capacity``.  ``epochs`` maps each configured database (``"points"`` /
    ``"uncertain"``) to its mutation epoch — an int for serial sessions, a
    ``{shard id: epoch}`` dict for sharded ones.  ``subscriptions`` is
    ``None`` until the session's first :meth:`Session.subscribe`; afterwards
    the registry's counters (``active`` / ``subscribed_total`` /
    ``deltas_emitted`` / ``reevaluations`` / ``skipped`` / ``rounds`` /
    ``pending_deltas``).
    """

    cache: dict[str, Any] | None = None
    epochs: dict[str, Any] = field(default_factory=dict)
    subscriptions: dict[str, int] | None = None

    @property
    def hit_rate(self) -> float:
        """Cache hit rate (0.0 for uncached sessions)."""
        return float(self.cache["hit_rate"]) if self.cache else 0.0


@dataclass(frozen=True)
class RangeQueryBuilder:
    """Immutable fluent builder for :class:`RangeQuery` objects."""

    session: Session
    spec: RangeQuerySpec
    target: RangeQueryTarget | None = None
    qp: float = 0.0
    issuer: UncertainObject | None = None

    def targets(self, target: RangeQueryTarget) -> "RangeQueryBuilder":
        """Select the database to query: ``"points"`` or ``"uncertain"``."""
        return replace(self, target=target)

    def threshold(self, qp: float) -> "RangeQueryBuilder":
        """Set the probability threshold ``Qp`` (constrained queries)."""
        return replace(self, qp=qp)

    def issued_by(self, issuer: UncertainObject) -> "RangeQueryBuilder":
        """Set the query issuer ``O0``."""
        return replace(self, issuer=issuer)

    def build(self) -> RangeQuery:
        """Materialise the configured :class:`RangeQuery`."""
        if self.issuer is None:
            raise InvalidQueryError(
                "no issuer configured; call .issued_by(<UncertainObject>) first"
            )
        if self.target is None:
            raise InvalidQueryError(
                "the session holds both databases; "
                'pick one with .targets("points") or .targets("uncertain")'
            )
        return RangeQuery(
            issuer=self.issuer, spec=self.spec, threshold=self.qp, target=self.target
        )

    def run(self) -> Evaluation:
        """Build and evaluate the query."""
        return self.session.evaluate(self.build())

    def run_many(self, issuers: Iterable[UncertainObject]) -> list[Evaluation]:
        """Evaluate the same query shape once per issuer, through the batch path."""
        if self.target is None:
            raise InvalidQueryError(
                "the session holds both databases; "
                'pick one with .targets("points") or .targets("uncertain")'
            )
        queries = [
            RangeQuery(issuer=issuer, spec=self.spec, threshold=self.qp, target=self.target)
            for issuer in issuers
        ]
        return self.session.evaluate_many(queries)


@dataclass(frozen=True)
class NearestNeighborQueryBuilder:
    """Immutable fluent builder for :class:`NearestNeighborQuery` objects."""

    session: Session
    samples: int | None = None
    qp: float = 0.0
    issuer: UncertainObject | None = None

    def threshold(self, qp: float) -> "NearestNeighborQueryBuilder":
        """Only report neighbours with probability at least ``qp``."""
        return replace(self, qp=qp)

    def sample_count(self, samples: int) -> "NearestNeighborQueryBuilder":
        """Set the Monte-Carlo sample count."""
        return replace(self, samples=samples)

    def issued_by(self, issuer: UncertainObject) -> "NearestNeighborQueryBuilder":
        """Set the query issuer ``O0``."""
        return replace(self, issuer=issuer)

    def build(self) -> NearestNeighborQuery:
        """Materialise the configured :class:`NearestNeighborQuery`."""
        if self.issuer is None:
            raise InvalidQueryError(
                "no issuer configured; call .issued_by(<UncertainObject>) first"
            )
        return NearestNeighborQuery(
            issuer=self.issuer, threshold=self.qp, samples=self.samples
        )

    def run(self) -> Evaluation:
        """Build and evaluate the query."""
        return self.session.evaluate(self.build())
