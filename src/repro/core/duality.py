"""Query–data duality probability computation (Section 4.2 of the paper).

Lemma 2 states that a point object ``Si`` satisfies the range query centred
at ``Sq`` iff ``Sq`` satisfies the (equally sized) range query centred at
``Si``.  This lets the qualification probability of a point object be written
as a single integral of the *issuer's* pdf over ``R(xi, yi) ∩ U0`` (Lemma 3),
and the qualification probability of an uncertain object as
``∫_{Ui ∩ (R ⊕ U0)} fi(x, y) · Q(x, y) dxdy`` (Lemma 4), where ``Q(x, y)`` is
the point-object probability at ``(x, y)``.

For the uniform pdfs used in the paper's main experiments both quantities are
closed-form:

* IPQ — the fraction of ``U0`` covered by ``R(xi, yi)`` (Equation 6);
* IUQ — because ``Q(x, y)`` separates into a product of per-axis overlap
  lengths, Equation 8 reduces to a product of two one-dimensional integrals
  of piecewise-linear functions, which are integrated exactly here.

For other pdfs a "semi-analytic" path (closed-form ``Q`` from the issuer,
sampled expectation over the object) and a fully sampled Monte-Carlo path
(used by the paper's Gaussian experiments, Figure 13) are provided.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.queries import RangeQuerySpec
from repro.uncertainty.pdf import UncertaintyPdf, UniformPdf
from repro.uncertainty.region import UncertainObject
from repro.uncertainty.sampling import grid_expectation


# --------------------------------------------------------------------------- #
# IPQ — point objects
# --------------------------------------------------------------------------- #
def ipq_probability(
    issuer_pdf: UncertaintyPdf, spec: RangeQuerySpec, location: Point
) -> float:
    """Qualification probability of a point object at ``location`` (Lemma 3).

    By duality the probability equals the issuer's probability mass inside
    the range rectangle centred at the *object's* location.  For a uniform
    issuer this is Equation 6 (fraction of ``U0`` overlapped); for any issuer
    pdf exposing a closed-form rectangle probability it stays exact.
    """
    dual_range = spec.region_at(location)
    return issuer_pdf.probability_in_rect(dual_range)


def ipq_probability_monte_carlo(
    issuer_pdf: UncertaintyPdf,
    spec: RangeQuerySpec,
    location: Point,
    samples: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of a point object's qualification probability.

    Samples issuer positions and counts how often the object falls inside the
    range centred at the sampled position — this is Equation 2 evaluated by
    sampling, the path the paper uses when the issuer pdf has no convenient
    closed form (Section 6.2).
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    draws = issuer_pdf.sample(rng, samples)
    dx = np.abs(draws[:, 0] - location.x)
    dy = np.abs(draws[:, 1] - location.y)
    inside = (dx <= spec.half_width) & (dy <= spec.half_height)
    return float(np.count_nonzero(inside)) / samples


# --------------------------------------------------------------------------- #
# IUQ — uncertain objects
# --------------------------------------------------------------------------- #
def _overlap_length_integral(
    object_interval: Interval, issuer_interval: Interval, half_extent: float
) -> float:
    """Exact value of ``∫ g(t) dt`` over the object's interval.

    ``g(t)`` is the length of the overlap between ``[t - half_extent,
    t + half_extent]`` and the issuer's interval — a piecewise-linear
    "trapezoid" function of ``t`` with breakpoints where the moving window's
    edges cross the issuer interval's edges.  Each linear piece is integrated
    exactly with the trapezoid rule.
    """
    lo, hi = object_interval.low, object_interval.high
    if hi <= lo:
        # Degenerate (zero-width) object interval: the 1-D integral is zero,
        # but the caller handles this case by treating the axis as a point.
        return 0.0

    a1, a2 = issuer_interval.low, issuer_interval.high

    def g(t: float) -> float:
        return max(0.0, min(t + half_extent, a2) - max(t - half_extent, a1))

    breakpoints = sorted(
        {lo, hi, a1 - half_extent, a1 + half_extent, a2 - half_extent, a2 + half_extent}
    )
    total = 0.0
    previous = lo
    for bp in breakpoints:
        if bp <= lo or bp >= hi:
            continue
        total += (g(previous) + g(bp)) / 2.0 * (bp - previous)
        previous = bp
    total += (g(previous) + g(hi)) / 2.0 * (hi - previous)
    return total


def iuq_probability_exact_uniform(
    issuer_pdf: UniformPdf, target: UncertainObject, spec: RangeQuerySpec
) -> float:
    """Closed-form Equation 8 for a uniform issuer and a uniform target.

    ``Q(x, y)`` separates into per-axis overlap lengths, so the double
    integral factors into two exact one-dimensional integrals of
    piecewise-linear functions divided by the issuer's and target's areas.
    """
    target_pdf = target.pdf
    if not isinstance(target_pdf, UniformPdf):
        raise TypeError("iuq_probability_exact_uniform requires a uniform target pdf")
    issuer_region = issuer_pdf.region
    target_region = target_pdf.region

    ix = _overlap_length_integral(
        target_region.x_interval, issuer_region.x_interval, spec.half_width
    )
    iy = _overlap_length_integral(
        target_region.y_interval, issuer_region.y_interval, spec.half_height
    )
    denominator = (
        target_region.width
        * target_region.height
        * issuer_region.width
        * issuer_region.height
    )
    if denominator == 0.0:
        raise ValueError("uniform regions must have positive area")
    probability = (ix * iy) / denominator
    return min(1.0, max(0.0, probability))


def iuq_probability(
    issuer_pdf: UncertaintyPdf,
    target: UncertainObject,
    spec: RangeQuerySpec,
    *,
    samples: int = 256,
    rng: np.random.Generator | None = None,
    grid_resolution: int | None = None,
) -> float:
    """Qualification probability of an uncertain object (Lemma 4 / Equation 8).

    Dispatches on the pdfs involved:

    * uniform issuer + uniform target → exact closed form;
    * any issuer with a closed-form rectangle probability → semi-analytic:
      ``Q(x, y)`` is evaluated exactly and the expectation over the target's
      pdf is taken by Monte-Carlo sampling (``samples`` draws) or, when
      ``grid_resolution`` is given, by a deterministic midpoint rule.
    """
    if isinstance(issuer_pdf, UniformPdf) and isinstance(target.pdf, UniformPdf):
        return iuq_probability_exact_uniform(issuer_pdf, target, spec)

    def point_probability(x: float, y: float) -> float:
        return ipq_probability(issuer_pdf, spec, Point(x, y))

    if grid_resolution is not None:
        return min(1.0, grid_expectation(target.pdf, point_probability, grid_resolution))

    if rng is None:
        rng = np.random.default_rng(0)
    draws = target.pdf.sample(rng, samples)
    total = 0.0
    for x, y in draws:
        total += point_probability(float(x), float(y))
    return min(1.0, total / samples)


def iuq_probability_monte_carlo(
    issuer_pdf: UncertaintyPdf,
    target: UncertainObject,
    spec: RangeQuerySpec,
    samples: int,
    rng: np.random.Generator,
) -> float:
    """Fully sampled estimate of an uncertain object's qualification probability.

    Both the issuer's and the object's positions are sampled (paired draws)
    and the fraction of pairs in which the object falls inside the range
    centred at the issuer's sampled position is returned.  This mirrors the
    paper's Monte-Carlo procedure for non-uniform pdfs (Section 6.2).
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    issuer_draws = issuer_pdf.sample(rng, samples)
    target_draws = target.pdf.sample(rng, samples)
    dx = np.abs(target_draws[:, 0] - issuer_draws[:, 0])
    dy = np.abs(target_draws[:, 1] - issuer_draws[:, 1])
    inside = (dx <= spec.half_width) & (dy <= spec.half_height)
    return float(np.count_nonzero(inside)) / samples


# --------------------------------------------------------------------------- #
# Restriction to the expanded query (the refinement of Lemma 4)
# --------------------------------------------------------------------------- #
def clipped_integration_region(target_region: Rect, expanded_query: Rect) -> Rect:
    """``Ui ∩ (R ⊕ U0)`` — the reduced integration region of Lemma 4.

    Points of ``Ui`` outside the expanded query contribute nothing to the
    integral because ``Q`` vanishes there (Lemma 1), so integrating over the
    clipped region is both correct and cheaper.
    """
    return target_region.intersect(expanded_query)
