"""CI benchmark regression guard.

Compares a freshly produced ``BENCH_api_batch.json`` against the committed
baseline and fails (exit code 1) when either headline metric degrades by
more than the tolerance (default 30 %, override with
``REPRO_BENCH_TOLERANCE``):

* ``batch_speedup`` — ``evaluate_many()`` over the per-query loop.  A ratio
  of two timings on the same machine, so it transfers across hardware; a
  drop means the batch path lost its amortisation.
* per-query-loop throughput (``per_query_loop.queries_per_second``) — guards
  the single-query hot path against accidental slow-downs.

The benchmark script overwrites the committed file in place, so the baseline
defaults to the checked-in version (``git show HEAD:BENCH_api_batch.json``);
pass ``--baseline`` to compare against a saved copy instead.

Run with::

    python benchmarks/bench_api_batch.py           # writes the fresh file
    python benchmarks/check_regression.py          # compares vs HEAD
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FRESH_PATH = REPO_ROOT / "BENCH_api_batch.json"
DEFAULT_TOLERANCE = 0.30


def load_baseline(path: str | None) -> dict:
    """The committed baseline: a file when given, ``git show HEAD:...`` otherwise."""
    if path is not None:
        return json.loads(Path(path).read_text())
    blob = subprocess.run(
        ["git", "show", "HEAD:BENCH_api_batch.json"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return json.loads(blob)


def compare(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass) for the guarded metrics."""
    failures: list[str] = []

    def guard(name: str, fresh_value: float, baseline_value: float) -> None:
        floor = baseline_value * (1.0 - tolerance)
        if fresh_value < floor:
            failures.append(
                f"{name} regressed: {fresh_value:.3f} < {floor:.3f} "
                f"(baseline {baseline_value:.3f}, tolerance {tolerance:.0%})"
            )

    guard("batch_speedup", float(fresh["batch_speedup"]), float(baseline["batch_speedup"]))
    guard(
        "per_query_loop.queries_per_second",
        float(fresh["per_query_loop"]["queries_per_second"]),
        float(baseline["per_query_loop"]["queries_per_second"]),
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default=str(FRESH_PATH), help="freshly produced result file")
    parser.add_argument(
        "--baseline", default=None, help="baseline file (default: HEAD's committed copy)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional degradation (default 0.30)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    baseline = load_baseline(args.baseline)
    failures = compare(fresh, baseline, args.tolerance)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(
        "benchmark guard OK: "
        f"batch_speedup {fresh['batch_speedup']:.3f} "
        f"(baseline {baseline['batch_speedup']:.3f}), "
        f"loop {fresh['per_query_loop']['queries_per_second']:.0f} q/s "
        f"(baseline {baseline['per_query_loop']['queries_per_second']:.0f} q/s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
