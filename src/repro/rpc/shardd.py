"""``shardd`` — one process hosting shard indexes behind the RPC transport.

A daemon owns zero or more *loaded shards*: each is one shard's objects,
rebuilt into a full :class:`~repro.core.database.PointDatabase` /
:class:`~repro.core.database.UncertainDatabase` (identical index kind and
catalog levels, so answers are bitwise-identical to the parent's local
copy), plus one staged :class:`~repro.core.pipeline.QueryPipeline` per
registered engine-config digest — the very same stage runner every other
executor in the repository uses.  One process typically hosts the point
*and* uncertain shard of the same shard id, halving the process count of a
two-kind deployment.

The transport is the length-prefixed binary framing of
:mod:`repro.serve.framing`.  Connections are served sequentially per
connection (a pipelined client reads replies in send order) and execution
is synchronous inside the event loop — a shard daemon is a single-core unit
of deployment; parallelism comes from running many of them.

Query execution delegates to
:func:`repro.core.parallel.execute_token_items`, the routine the
shared-memory pool workers run, so the RPC transport cannot diverge from
the in-process executors in how tokens rebuild queries or how answers are
packed.  Mutations apply the same database primitives the parent's owning
shard applied and reply with the shard's new epoch — the parent's
epoch-vector cache keys stay coherent without any broadcast invalidation.

Run standalone with::

    python -m repro.rpc.shardd --host 127.0.0.1 --port 0

(port 0 binds an ephemeral port; the bound address is printed to stdout).
Typed failures (:class:`~repro.errors.ReproError`) are answered as error
frames and the connection keeps serving; anything else kills the daemon —
supervision is the launcher's job.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Mapping

import numpy as np

from repro.core.database import PointDatabase, UncertainDatabase
from repro.core.engine import EngineConfig
from repro.core.errors import EngineStateError, SchemaError
from repro.core.parallel import _config_digest, _pack_answers, execute_token_items
from repro.core.pipeline import QueryPipeline
from repro.core.updates import UpdateOp
from repro.core.wire import require
from repro.errors import ReproError
from repro.rpc import wire
from repro.serve.framing import encode_frame, read_frame
from repro.serve.schemas import error_to_dict

RPC_SCHEMA = wire.RPC_SCHEMA


class _LoadedShard:
    """One hosted shard: its database plus per-config-digest pipelines."""

    def __init__(self, kind: str, database: PointDatabase | UncertainDatabase) -> None:
        self.kind = kind
        self.database = database
        self._configs: dict[str, EngineConfig] = {}
        self._pipelines: dict[str, QueryPipeline] = {}

    def register(self, config: EngineConfig) -> str:
        """Register one engine configuration; returns its digest."""
        digest = _config_digest(config)
        self._configs.setdefault(digest, config)
        return digest

    def pipeline(self, digest: str) -> tuple[QueryPipeline, EngineConfig]:
        """The staged pipeline for one registered configuration."""
        config = self._configs.get(digest)
        if config is None:
            raise EngineStateError(
                f"no configuration registered under digest {digest!r}; "
                "send a load or configure request first"
            )
        pipeline = self._pipelines.get(digest)
        if pipeline is None:
            if self.kind == "points":
                pipeline = QueryPipeline(
                    point_db=self.database, config=config, cache=None
                )
            else:
                pipeline = QueryPipeline(
                    uncertain_db=self.database, config=config, cache=None
                )
            self._pipelines[digest] = pipeline
        return pipeline, config


class ShardHost:
    """The daemon's state: loaded shards keyed by ``(kind, sid)``."""

    def __init__(self) -> None:
        self._shards: dict[tuple[str, int], _LoadedShard] = {}
        self.shutdown_requested = asyncio.Event()

    # ------------------------------------------------------------------ #
    # Request handling (synchronous: one frame in, one frame out)
    # ------------------------------------------------------------------ #
    def handle(
        self, header: Mapping, arrays: dict[str, np.ndarray]
    ) -> tuple[dict, dict[str, np.ndarray]]:
        """Execute one request; returns the reply header + arrays."""
        op, header = wire.check_header(header)
        if op == "load":
            return self._load(header), {}
        if op == "configure":
            return self._configure(header), {}
        if op == "query":
            return self._query(header)
        if op == "update":
            return self._update(header), {}
        if op == "shutdown":
            self.shutdown_requested.set()
            return wire.header("bye"), {}
        raise SchemaError(f"unknown rpc op {op!r}")

    def _shard(self, header: Mapping) -> _LoadedShard:
        kind = require(header, RPC_SCHEMA, "kind")
        sid = int(require(header, RPC_SCHEMA, "sid"))
        shard = self._shards.get((kind, sid))
        if shard is None:
            raise EngineStateError(
                f"shard ({kind!r}, {sid}) is not loaded on this daemon"
            )
        return shard

    def _load(self, header: Mapping) -> dict:
        """Rebuild one shard's database from its shipped objects.

        Loading an already-loaded ``(kind, sid)`` replaces it wholesale —
        the parent re-ships a shard's snapshot when it detects epoch drift
        (e.g. a shard that was drained and later repopulated locally).
        """
        kind = require(header, RPC_SCHEMA, "kind")
        if kind not in ("points", "uncertain"):
            raise SchemaError(f"unknown shard kind {kind!r}")
        sid = int(require(header, RPC_SCHEMA, "sid"))
        index_kind = require(header, RPC_SCHEMA, "index_kind")
        levels = require(header, RPC_SCHEMA, "catalog_levels")
        config = wire.config_from_dict(require(header, RPC_SCHEMA, "config"))
        objects = [
            wire.object_from_dict(payload)
            for payload in require(header, RPC_SCHEMA, "objects")
        ]
        if kind == "points":
            database: PointDatabase | UncertainDatabase = PointDatabase.build(
                objects, index_kind=index_kind
            )
        else:
            database = UncertainDatabase.build(
                objects,
                index_kind=index_kind,
                catalog_levels=(
                    [float(level) for level in levels] if levels is not None else None
                ),
            )
        shard = _LoadedShard(kind, database)
        digest = shard.register(config)
        self._shards[(kind, sid)] = shard
        return wire.header(
            "loaded", epoch=database.epoch, count=len(objects), config_digest=digest
        )

    def _configure(self, header: Mapping) -> dict:
        shard = self._shard(header)
        digest = shard.register(
            wire.config_from_dict(require(header, RPC_SCHEMA, "config"))
        )
        return wire.header("configured", config_digest=digest)

    def _query(self, header: Mapping) -> tuple[dict, dict[str, np.ndarray]]:
        shard = self._shard(header)
        digest = require(header, RPC_SCHEMA, "config_digest")
        pipeline, config = shard.pipeline(digest)
        answers = execute_token_items(
            pipeline,
            config,
            wire.decode_items(require(header, RPC_SCHEMA, "range_items")),
            wire.decode_items(require(header, RPC_SCHEMA, "nn_items")),
        )
        arrays, pruned_names = _pack_answers(answers)
        reply = wire.header(
            "answers", pruned_names=list(pruned_names), epoch=shard.database.epoch
        )
        return reply, arrays

    def _update(self, header: Mapping) -> dict:
        """Apply one-shard mutation ops; reply with the shard's new epoch."""
        shard = self._shard(header)
        ops = [UpdateOp.from_dict(payload) for payload in require(header, RPC_SCHEMA, "ops")]
        for op in ops:
            self._apply(shard.database, op)
        return wire.header("epoch", epoch=shard.database.epoch)

    @staticmethod
    def _apply(database: PointDatabase | UncertainDatabase, op: UpdateOp) -> None:
        # The same primitives the parent's owning shard database applied, in
        # the same order — so the shard's epoch counter and object set stay
        # bitwise in step with the parent's local copy.
        if op.action == "insert":
            database.insert(op.obj)
        elif op.action == "delete":
            database.delete(int(op.oid))
        elif op.pdf is not None:
            database.move(int(op.oid), op.pdf)
        else:
            database.move(int(op.oid), float(op.x), float(op.y))

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: sequential frames, replies in request order."""
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                header, arrays = frame
                try:
                    reply, reply_arrays = self.handle(header, arrays)
                except ReproError as error:
                    # Typed failures answer in-band; the connection (and the
                    # daemon's other shards) keep serving.
                    reply = wire.header("error", error=error_to_dict(error))
                    reply_arrays = {}
                writer.write(encode_frame(reply, reply_arrays))
                await writer.drain()
                if self.shutdown_requested.is_set():
                    break
        except SchemaError:
            pass  # unframeable stream: nothing sane left to reply to
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def serve(
    host: ShardHost, bind_host: str = "127.0.0.1", port: int = 0
) -> asyncio.Server:
    """Start one daemon server (``port=0`` binds an ephemeral port)."""
    return await asyncio.start_server(host.handle_connection, bind_host, port)


async def _amain(bind_host: str, port: int) -> int:
    host = ShardHost()
    server = await serve(host, bind_host, port)
    bound = server.sockets[0].getsockname()
    print(f"shardd listening on {bound[0]}:{bound[1]}", flush=True)
    async with server:
        await host.shutdown_requested.wait()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: host one shard daemon until a shutdown request."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.rpc.shardd",
        description="Serve shard indexes over the repro RPC transport.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    args = parser.parse_args(argv)
    return asyncio.run(_amain(args.host, args.port))


if __name__ == "__main__":
    raise SystemExit(main())
