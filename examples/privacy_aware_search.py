"""Location privacy vs answer quality — the trade-off behind the paper.

The paper motivates imprecise queries partly by privacy: a user can protect
their location by *deliberately* reporting a larger uncertainty region (a
"cloaking box").  The price is answer quality: the larger the region, the
fuzzier the qualification probabilities and the more work the server does.

This example sweeps the cloaking-box size for a fixed user and query range
over the California-like point dataset and reports, for each size:

* how many objects are possible answers at all (probability > 0),
* how many are confident answers (probability >= 0.7),
* the expected number of retrieved objects (sum of probabilities), and
* the server-side evaluation cost.

Run with::

    python examples/privacy_aware_search.py
"""

from __future__ import annotations

from repro import Point, RangeQuery, RangeQuerySpec, Session
from repro.datasets.tiger import california_points
from repro.datasets.workload import QueryWorkload

RANGE_HALF_SIZE = 500.0
CONFIDENCE = 0.7
CLOAK_SIZES = [50.0, 125.0, 250.0, 500.0, 1_000.0]


def main() -> None:
    print("building the point-of-interest database (California stand-in, 10%) ...")
    objects = california_points(scale=0.1)
    session = Session.from_objects(points=objects)
    spec = RangeQuerySpec.square(RANGE_HALF_SIZE)

    true_position = Point(5_000.0, 5_000.0)
    database = session.point_db
    assert database is not None
    print(f"  {len(database)} points indexed; user's true position: {true_position.as_tuple()}")
    print()
    header = (
        f"{'cloak half-size':>16} {'possible':>9} {'confident':>10} "
        f"{'expected answers':>17} {'candidates':>11} {'time (ms)':>10}"
    )
    print(header)
    print("-" * len(header))

    # One IPQ per cloaking-box size, issued as a single batch: the whole
    # sweep goes through the engine's amortised evaluate_many() path.
    queries = []
    for cloak in CLOAK_SIZES:
        workload = QueryWorkload(issuer_half_size=cloak, range_half_size=RANGE_HALF_SIZE)
        queries.append(RangeQuery.ipq(workload.make_issuer(true_position), spec))
    for cloak, evaluation in zip(CLOAK_SIZES, session.evaluate_many(queries)):
        confident = evaluation.result.above_threshold(CONFIDENCE)
        expected_answers = sum(answer.probability for answer in evaluation)
        stats = evaluation.statistics
        print(
            f"{cloak:>16.0f} {len(evaluation):>9} {len(confident):>10} "
            f"{expected_answers:>17.1f} {stats.candidates_examined:>11} "
            f"{stats.response_time_ms:>10.2f}"
        )

    print()
    print(
        "Reading the table: growing the cloaking box keeps the user's true\n"
        "position private among more possibilities, but the confident-answer\n"
        "set shrinks relative to the possible-answer set and the server has to\n"
        "examine more candidates — exactly the privacy/quality/cost trade-off\n"
        "the constrained queries of Section 5 are designed to manage."
    )


if __name__ == "__main__":
    main()
