"""Unit tests for the query-workload generator."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.datasets.workload import QueryWorkload
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf


class TestValidation:
    def test_rejects_non_positive_issuer_size(self):
        with pytest.raises(ValueError):
            QueryWorkload(issuer_half_size=0.0)

    def test_rejects_negative_range(self):
        with pytest.raises(ValueError):
            QueryWorkload(range_half_size=-1.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            QueryWorkload(threshold=1.5)

    def test_rejects_unknown_pdf_kind(self):
        with pytest.raises(ValueError):
            QueryWorkload(issuer_pdf="poisson")

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            list(QueryWorkload().issuers(0))


class TestIssuers:
    def test_default_parameters_match_paper(self):
        workload = QueryWorkload()
        assert workload.issuer_half_size == 250.0
        assert workload.range_half_size == 500.0
        assert workload.threshold == 0.0
        assert workload.spec.half_width == 500.0

    def test_issuer_regions_are_squares_of_requested_size(self):
        workload = QueryWorkload(issuer_half_size=100.0)
        issuer = next(workload.issuers(1))
        assert issuer.region.width == pytest.approx(200.0)
        assert issuer.region.height == pytest.approx(200.0)

    def test_issuer_regions_stay_inside_bounds(self):
        bounds = Rect(0.0, 0.0, 2_000.0, 2_000.0)
        workload = QueryWorkload(issuer_half_size=400.0, bounds=bounds, seed=3)
        for issuer in workload.issuers(50):
            assert bounds.contains_rect(issuer.region)

    def test_uniform_pdf_by_default(self):
        issuer = next(QueryWorkload().issuers(1))
        assert isinstance(issuer.pdf, UniformPdf)

    def test_gaussian_pdf_on_request(self):
        issuer = next(QueryWorkload(issuer_pdf="gaussian").issuers(1))
        assert isinstance(issuer.pdf, TruncatedGaussianPdf)

    def test_catalog_attached_by_default(self):
        issuer = next(QueryWorkload().issuers(1))
        assert issuer.catalog is not None

    def test_catalog_can_be_disabled(self):
        issuer = next(QueryWorkload(catalog_levels=None).issuers(1))
        assert issuer.catalog is None

    def test_deterministic_for_seed(self):
        a = [i.region for i in QueryWorkload(seed=5).issuers(10)]
        b = [i.region for i in QueryWorkload(seed=5).issuers(10)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [i.region for i in QueryWorkload(seed=5).issuers(10)]
        b = [i.region for i in QueryWorkload(seed=6).issuers(10)]
        assert a != b

    def test_make_issuer_at_explicit_center(self):
        workload = QueryWorkload(issuer_half_size=50.0)
        issuer = workload.make_issuer(Point(123.0, 456.0), oid=9)
        assert issuer.oid == 9
        assert issuer.region.center == Point(123.0, 456.0)


class TestQueries:
    def test_queries_carry_threshold_and_spec(self):
        workload = QueryWorkload(threshold=0.3, range_half_size=700.0)
        queries = list(workload.queries(5))
        assert len(queries) == 5
        assert all(q.threshold == 0.3 for q in queries)
        assert all(q.spec.half_width == 700.0 for q in queries)

    def test_with_parameters_returns_modified_copy(self):
        base = QueryWorkload()
        modified = base.with_parameters(range_half_size=1_500.0)
        assert modified.range_half_size == 1_500.0
        assert base.range_half_size == 500.0
