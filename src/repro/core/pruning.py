"""Threshold-based pruning for constrained imprecise queries (Section 5).

C-IPQ pruning is a single geometric test: a point object lying outside the
issuer's Qp-expanded-query cannot reach the threshold (Definition 7), so the
expanded query itself doubles as the index window.

C-IUQ pruning combines three strategies (Section 5.2):

* **Strategy 1 (p-bound of the object).**  If the part of the object's region
  that intersects the Minkowski-expanded query lies entirely beyond the
  object's ``m``-bound (for some stored level ``m ≤ Qp``), the object's mass
  inside the expanded query is at most ``m ≤ Qp`` and it can be pruned.
* **Strategy 2 (p-expanded-query).**  If the object's whole region misses the
  issuer's Qp-expanded-query, then ``Q(x, y) ≤ Qp`` everywhere on the region
  and the object can be pruned.
* **Strategy 3 (product bound).**  When neither single test fires, an upper
  bound ``d`` on the object's mass in the expanded query (from the object's
  catalog, level ≥ Qp) and an upper bound ``q`` on ``Q`` over the region
  (from the issuer's catalog, level ≥ Qp) are multiplied; if ``d · q < Qp``
  the object is pruned.

All three tests only involve pre-computed rectangles and constant-time
overlap checks, which is what makes them much cheaper than computing the
exact qualification probability.
"""

from __future__ import annotations
from repro.core.errors import InvalidQueryError

import enum
from dataclasses import dataclass

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.columnar import bounds_overlap_window_mask
from repro.core.expansion import (
    minkowski_expanded_query,
    p_expanded_query,
    p_expanded_query_from_catalog,
)
from repro.core.queries import RangeQuerySpec
from repro.uncertainty.region import PointObject, UncertainObject


class PruningStrategy(enum.Enum):
    """The C-IUQ pruning strategies of Section 5.2."""

    P_BOUND = "p_bound"
    P_EXPANDED_QUERY = "p_expanded_query"
    PRODUCT_BOUND = "product_bound"


#: All strategies, in the (cheap-to-expensive) order they are attempted.
ALL_STRATEGIES: tuple[PruningStrategy, ...] = (
    PruningStrategy.P_EXPANDED_QUERY,
    PruningStrategy.P_BOUND,
    PruningStrategy.PRODUCT_BOUND,
)


@dataclass(frozen=True, slots=True)
class PruneDecision:
    """Outcome of the pruning tests for one candidate object."""

    pruned: bool
    strategy: str | None = None

    @staticmethod
    def keep() -> "PruneDecision":
        """The candidate survives pruning and needs an exact probability."""
        return PruneDecision(pruned=False, strategy=None)

    @staticmethod
    def drop(strategy: PruningStrategy | str) -> "PruneDecision":
        """The candidate is pruned by ``strategy``."""
        name = strategy.value if isinstance(strategy, PruningStrategy) else strategy
        return PruneDecision(pruned=True, strategy=name)


class CIPQPruner:
    """Pruning helper for constrained queries over point objects (Section 5.1)."""

    def __init__(
        self,
        issuer: UncertainObject,
        spec: RangeQuerySpec,
        threshold: float,
        *,
        use_catalog: bool = True,
        use_p_expanded_query: bool = True,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise InvalidQueryError(f"threshold must lie in [0, 1], got {threshold}")
        self._spec = spec
        self._threshold = threshold
        self._minkowski = minkowski_expanded_query(issuer.region, spec)
        self._level_used = 0.0
        if threshold > 0.0 and use_p_expanded_query:
            usable_level = (
                issuer.catalog.largest_level_at_most(threshold)
                if (use_catalog and issuer.catalog is not None)
                else None
            )
            if usable_level is not None and issuer.catalog is not None:
                self._filter_region, self._level_used = p_expanded_query_from_catalog(
                    issuer.catalog, spec, threshold
                )
            else:
                self._filter_region = p_expanded_query(issuer.pdf, spec, threshold)
                self._level_used = threshold
        else:
            self._filter_region = self._minkowski

    @property
    def filter_region(self) -> Rect:
        """The window used to query the spatial index (and to prune candidates)."""
        return self._filter_region

    @property
    def minkowski_region(self) -> Rect:
        """The 0-expanded-query ``R ⊕ U0``."""
        return self._minkowski

    @property
    def level_used(self) -> float:
        """The probability level the expanded query was built from."""
        return self._level_used

    def decide(self, obj: PointObject) -> PruneDecision:
        """Prune ``obj`` when it lies outside the (p-)expanded query."""
        if not self._filter_region.contains_point(obj.location):
            return PruneDecision.drop(PruningStrategy.P_EXPANDED_QUERY)
        return PruneDecision.keep()

    def prune_point(self, location: Point) -> bool:
        """Convenience wrapper for raw locations."""
        return not self._filter_region.contains_point(location)


class CIUQPruner:
    """Pruning helper for constrained queries over uncertain objects (Section 5.2)."""

    def __init__(
        self,
        issuer: UncertainObject,
        spec: RangeQuerySpec,
        threshold: float,
        *,
        strategies: tuple[PruningStrategy, ...] = ALL_STRATEGIES,
        use_catalog: bool = True,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise InvalidQueryError(f"threshold must lie in [0, 1], got {threshold}")
        self._issuer = issuer
        self._spec = spec
        self._threshold = threshold
        self._strategies = tuple(strategies)
        self._use_catalog = use_catalog
        self._minkowski = minkowski_expanded_query(issuer.region, spec)

        # Qp-expanded-query used by Strategy 2 (and as the index window when
        # the caller enables it).  Catalog rounding keeps pruning conservative.
        if threshold > 0.0:
            usable_level = (
                issuer.catalog.largest_level_at_most(threshold)
                if (use_catalog and issuer.catalog is not None)
                else None
            )
            if usable_level is not None and issuer.catalog is not None:
                self._qp_expanded, self._qp_level = p_expanded_query_from_catalog(
                    issuer.catalog, spec, threshold
                )
            else:
                self._qp_expanded = p_expanded_query(issuer.pdf, spec, threshold)
                self._qp_level = threshold
        else:
            self._qp_expanded = self._minkowski
            self._qp_level = 0.0

        # Strategy 3 needs, for every issuer catalog level q >= Qp, the
        # q-expanded-query; pre-compute them once per query (in increasing
        # level order, so the first match found below is the tightest bound).
        self._issuer_expanded_by_level: list[tuple[float, Rect]] = []
        if issuer.catalog is not None:
            for level, bound in issuer.catalog:
                if level >= threshold:
                    rect = Rect(
                        bound.left - spec.half_width,
                        bound.bottom - spec.half_height,
                        bound.right + spec.half_width,
                        bound.top + spec.half_height,
                    )
                    self._issuer_expanded_by_level.append((level, rect))

    # ------------------------------------------------------------------ #
    # Regions used by the index filter step
    # ------------------------------------------------------------------ #
    @property
    def minkowski_region(self) -> Rect:
        """The 0-expanded-query ``R ⊕ U0``."""
        return self._minkowski

    @property
    def qp_expanded_region(self) -> Rect:
        """The Qp-expanded-query (equal to the Minkowski sum when Qp = 0)."""
        return self._qp_expanded

    @property
    def threshold(self) -> float:
        """The probability threshold of the query."""
        return self._threshold

    @property
    def strategies(self) -> tuple[PruningStrategy, ...]:
        """The enabled pruning strategies."""
        return self._strategies

    # ------------------------------------------------------------------ #
    # Per-object pruning
    # ------------------------------------------------------------------ #
    def _strategy_p_expanded(self, obj: UncertainObject) -> bool:
        """Strategy 2: the object's region misses the Qp-expanded-query."""
        return not obj.region.overlaps(self._qp_expanded)

    def _strategy_p_bound(self, obj: UncertainObject, overlap: Rect) -> bool:
        """Strategy 1: the overlap with ``R ⊕ U0`` lies beyond the object's m-bound."""
        if obj.catalog is None:
            return False
        level = obj.catalog.largest_level_at_most(self._threshold)
        if level is None or level <= 0.0:
            return False
        if overlap.is_empty:
            return True
        return not overlap.overlaps(obj.catalog.rect_at(level))

    def _mass_upper_bound(self, obj: UncertainObject, overlap: Rect) -> float | None:
        """Smallest catalog level ``d ≥ Qp`` bounding the object's mass in ``R ⊕ U0``."""
        if obj.catalog is None:
            return None
        if overlap.is_empty:
            return 0.0
        level_rects = obj.catalog.level_rects()
        # Bound rectangles shrink as the level grows.  If the overlap region
        # still intersects the *tightest* stored bound, it intersects every
        # looser one as well and no level can bound the mass — a single check
        # settles the common case.
        tightest_level, tightest_rect = level_rects[-1]
        if tightest_level >= self._threshold and overlap.overlaps(tightest_rect):
            return None
        # Otherwise the first (smallest) qualifying level whose bound misses
        # the overlap region is the tightest valid upper bound.
        for level, rect in level_rects:
            if level < self._threshold:
                continue
            if not overlap.overlaps(rect):
                return level
        return None

    def _q_upper_bound(self, obj: UncertainObject) -> float | None:
        """Smallest issuer level ``q ≥ Qp`` bounding ``Q(x, y)`` over the object's region."""
        if not self._issuer_expanded_by_level:
            return None
        region = obj.region
        # Expanded queries shrink as the level grows; overlap with the
        # tightest one implies overlap with all of them (no usable bound).
        if region.overlaps(self._issuer_expanded_by_level[-1][1]):
            return None
        for level, rect in self._issuer_expanded_by_level:
            if not region.overlaps(rect):
                return level
        return None

    def _strategy_product(self, obj: UncertainObject, overlap: Rect) -> bool:
        """Strategy 3: the product of the two catalog upper bounds stays below Qp."""
        if self._threshold <= 0.0:
            return False
        q_bound = self._q_upper_bound(obj)
        if q_bound is None:
            return False
        d_bound = self._mass_upper_bound(obj, overlap)
        if d_bound is None:
            return False
        return d_bound * q_bound < self._threshold

    def decide(
        self,
        obj: UncertainObject,
        strategies: tuple[PruningStrategy, ...] | None = None,
    ) -> PruneDecision:
        """Run the enabled strategies (cheapest first) and report the outcome.

        ``strategies`` overrides the pruner's configured strategy set for this
        call; the engine uses it to skip the strategies a PTI has already
        applied at the index level (re-checking them per object would test the
        exact same rounded-level conditions again).
        """
        if self._threshold <= 0.0:
            return PruneDecision.keep()
        if strategies is None:
            strategies = self._strategies
        overlap = obj.region.intersect(self._minkowski)
        for strategy in strategies:
            if strategy is PruningStrategy.P_EXPANDED_QUERY and self._strategy_p_expanded(obj):
                return PruneDecision.drop(strategy)
            if strategy is PruningStrategy.P_BOUND and self._strategy_p_bound(obj, overlap):
                return PruneDecision.drop(strategy)
            if strategy is PruningStrategy.PRODUCT_BOUND and self._strategy_product(obj, overlap):
                return PruneDecision.drop(strategy)
        return PruneDecision.keep()

    # ------------------------------------------------------------------ #
    # Vectorized pruning over a candidate batch
    # ------------------------------------------------------------------ #
    @staticmethod
    def _overlaps_rect(bounds: np.ndarray, rect: Rect) -> np.ndarray:
        """Row-wise ``Rect.overlaps`` between a bounds array and one rectangle."""
        if rect.is_empty:
            return np.zeros(bounds.shape[0], dtype=bool)
        return bounds_overlap_window_mask(bounds, rect)

    @staticmethod
    def _overlaps_rects(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise overlap between ``a`` ``(K, 4)`` and ``b`` ``(K, ..., 4)``.

        Empty rectangles (inverted intervals) on either side never overlap,
        matching the scalar predicate.
        """
        a = a.reshape(a.shape[0], *([1] * (b.ndim - 2)), 4)
        a_empty = (a[..., 0] > a[..., 2]) | (a[..., 1] > a[..., 3])
        b_empty = (b[..., 0] > b[..., 2]) | (b[..., 1] > b[..., 3])
        return (
            ~a_empty
            & ~b_empty
            & (a[..., 0] <= b[..., 2])
            & (b[..., 0] <= a[..., 2])
            & (a[..., 1] <= b[..., 3])
            & (b[..., 1] <= a[..., 3])
        )

    def decide_many(
        self,
        bounds: np.ndarray,
        catalog_levels: np.ndarray | None,
        catalog_bounds: np.ndarray | None,
        strategies: tuple[PruningStrategy, ...] | None = None,
    ) -> tuple[np.ndarray, dict[str, int]] | None:
        """Vectorized :meth:`decide` over a candidate batch.

        ``bounds`` holds the candidates' uncertainty regions as ``(K, 4)``
        rows; ``catalog_levels`` / ``catalog_bounds`` are the shared catalog
        levels and the per-candidate ``(K, L, 4)`` bound rectangles from the
        columnar snapshot (``None`` when unavailable).  Returns a keep mask
        plus per-strategy pruned counts — identical decisions and attribution
        to a scalar ``decide`` loop, which relies on the same invariants
        (bound rectangles and expanded queries shrink as the level grows).
        Returns ``None`` when a requested catalog-based strategy lacks its
        columnar prerequisites; callers then fall back to the scalar loop.
        """
        if strategies is None:
            strategies = self._strategies
        k = bounds.shape[0]
        if self._threshold <= 0.0 or k == 0:
            return np.ones(k, dtype=bool), {}
        needs_catalog = any(
            s in (PruningStrategy.P_BOUND, PruningStrategy.PRODUCT_BOUND)
            for s in strategies
        )
        if needs_catalog and (catalog_levels is None or catalog_bounds is None):
            return None

        # The overlap with the Minkowski window, clipped per candidate (the
        # vectorized twin of ``obj.region.intersect(self._minkowski)``).
        m = self._minkowski
        overlap = np.empty((k, 4), dtype=float)
        overlap[:, 0] = np.maximum(bounds[:, 0], m.xmin)
        overlap[:, 1] = np.maximum(bounds[:, 1], m.ymin)
        overlap[:, 2] = np.minimum(bounds[:, 2], m.xmax)
        overlap[:, 3] = np.minimum(bounds[:, 3], m.ymax)
        overlap_empty = (overlap[:, 0] > overlap[:, 2]) | (overlap[:, 1] > overlap[:, 3])

        alive = np.ones(k, dtype=bool)
        pruned_counts: dict[str, int] = {}
        for strategy in strategies:
            if not alive.any():
                break
            if strategy is PruningStrategy.P_EXPANDED_QUERY:
                fired = ~self._overlaps_rect(bounds, self._qp_expanded)
            elif strategy is PruningStrategy.P_BOUND:
                fired = self._p_bound_mask(overlap, overlap_empty, catalog_levels, catalog_bounds)
            else:
                fired = self._product_mask(
                    bounds, overlap, overlap_empty, catalog_levels, catalog_bounds
                )
            fired &= alive
            count = int(np.count_nonzero(fired))
            if count:
                pruned_counts[strategy.value] = count
                alive &= ~fired
        return alive, pruned_counts

    def _p_bound_mask(
        self,
        overlap: np.ndarray,
        overlap_empty: np.ndarray,
        catalog_levels: np.ndarray,
        catalog_bounds: np.ndarray,
    ) -> np.ndarray:
        """Vectorized Strategy 1 over the candidate batch."""
        usable = catalog_levels[catalog_levels <= self._threshold]
        if usable.size == 0 or usable[-1] <= 0.0:
            return np.zeros(overlap.shape[0], dtype=bool)
        level_index = int(np.searchsorted(catalog_levels, usable[-1]))
        level_rects = catalog_bounds[:, level_index, :]
        return overlap_empty | ~self._overlaps_rects(overlap, level_rects)

    def _product_mask(
        self,
        bounds: np.ndarray,
        overlap: np.ndarray,
        overlap_empty: np.ndarray,
        catalog_levels: np.ndarray,
        catalog_bounds: np.ndarray,
    ) -> np.ndarray:
        """Vectorized Strategy 3 over the candidate batch.

        Exploits the same nesting invariant as the scalar early-exits: both
        the issuer's expanded queries and the objects' bound rectangles
        shrink as the level grows, so "the first level whose rectangle misses
        the region" equals "the number of levels whose rectangle overlaps
        it".
        """
        k = bounds.shape[0]
        if not self._issuer_expanded_by_level:
            return np.zeros(k, dtype=bool)
        # q: smallest issuer level (>= Qp) whose expanded query misses the
        # object's whole region; no such level -> no bound -> no pruning.
        issuer_levels = np.array([level for level, _ in self._issuer_expanded_by_level])
        issuer_rects = np.array(
            [rect.as_tuple() for _, rect in self._issuer_expanded_by_level]
        )
        region_overlaps = self._overlaps_rects(bounds, issuer_rects[None, :, :])
        q_index = region_overlaps.sum(axis=1)
        q_valid = q_index < issuer_levels.size
        q_bound = issuer_levels[np.minimum(q_index, issuer_levels.size - 1)]
        # d: smallest object catalog level (>= Qp) whose bound rectangle
        # misses the overlap with the Minkowski window; an empty overlap is
        # bounded by 0.
        qualifying = catalog_levels >= self._threshold
        if not qualifying.any():
            d_valid = np.zeros(k, dtype=bool)
            d_bound = np.zeros(k, dtype=float)
        else:
            start = int(np.argmax(qualifying))
            levels = catalog_levels[start:]
            olap = self._overlaps_rects(overlap, catalog_bounds[:, start:, :])
            d_index = olap.sum(axis=1)
            d_valid = d_index < levels.size
            d_bound = levels[np.minimum(d_index, levels.size - 1)]
        d_valid = d_valid | overlap_empty
        d_bound = np.where(overlap_empty, 0.0, d_bound)
        return q_valid & d_valid & (d_bound * q_bound < self._threshold)
