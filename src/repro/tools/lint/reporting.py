"""Diagnostic rendering for the lint CLI: text for humans, JSON for CI."""

from __future__ import annotations

import json

from repro.tools.lint.engine import Diagnostic, Rule


def format_text(diagnostics: list[Diagnostic]) -> str:
    """One ``path:line: ID [severity] message`` line per diagnostic."""
    lines = [
        f"{d.path}:{d.line}: {d.rule} [{d.severity}] {d.message}"
        for d in diagnostics
    ]
    if diagnostics:
        lines.append(f"{len(diagnostics)} diagnostic(s)")
    return "\n".join(lines)


def format_json(diagnostics: list[Diagnostic]) -> str:
    payload = {
        "count": len(diagnostics),
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rule_listing(rules: list[Rule]) -> str:
    """The ``--list-rules`` table."""
    lines = [
        f"{rule.rule_id}  [{rule.severity:7s}]  {rule.description}"
        for rule in rules
    ]
    return "\n".join(lines)
