"""Unit tests for the query–data duality probability computations (Section 4.2)."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.duality import (
    clipped_integration_region,
    ipq_probability,
    ipq_probability_monte_carlo,
    iuq_probability,
    iuq_probability_exact_uniform,
    iuq_probability_monte_carlo,
)
from repro.core.queries import RangeQuerySpec
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import UncertainObject

ISSUER_REGION = Rect(0.0, 0.0, 500.0, 500.0)
SPEC = RangeQuerySpec(half_width=500.0, half_height=500.0)


class TestIPQProbability:
    def test_duality_symmetry_for_point_issuers(self):
        """Lemma 2: Si satisfies R(Sq) iff Sq satisfies R(Si).

        With a (nearly) point-like issuer the probability is 0/1 and the
        symmetry can be checked directly.
        """
        spec = RangeQuerySpec(50.0, 30.0)
        issuer_at = Point(100.0, 100.0)
        tiny = Rect.from_center(issuer_at, 1e-6, 1e-6)
        issuer_pdf = UniformPdf(tiny)
        target = Point(130.0, 120.0)
        forward = spec.region_at(issuer_at).contains_point(target)
        backward = ipq_probability(issuer_pdf, spec, target) > 0.5
        assert forward == backward

    def test_uniform_equation_6(self):
        """Equation 6: the probability is the overlapped fraction of U0."""
        issuer_pdf = UniformPdf(ISSUER_REGION)
        # R(Si) centred at (500, 250) with half-extent 500 covers the right
        # half... actually covers x in [0,1000] so the full region.
        assert ipq_probability(issuer_pdf, SPEC, Point(500.0, 250.0)) == pytest.approx(1.0)
        # A target 750 units right of the region centre: R(Si) covers
        # x in [250, 1250], i.e. half of U0 in x, all of it in y.
        assert ipq_probability(issuer_pdf, SPEC, Point(750.0, 250.0)) == pytest.approx(0.5)

    def test_zero_outside_expanded_query(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        far = Point(5_000.0, 5_000.0)
        assert ipq_probability(issuer_pdf, SPEC, far) == 0.0

    def test_object_at_issuer_center_has_probability_one_for_large_range(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        assert ipq_probability(issuer_pdf, SPEC, Point(250.0, 250.0)) == pytest.approx(1.0)

    def test_matches_monte_carlo_uniform(self, rng):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = Point(650.0, 300.0)
        exact = ipq_probability(issuer_pdf, SPEC, target)
        estimate = ipq_probability_monte_carlo(issuer_pdf, SPEC, target, 30_000, rng)
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_matches_monte_carlo_gaussian(self, rng):
        issuer_pdf = TruncatedGaussianPdf(ISSUER_REGION)
        target = Point(650.0, 300.0)
        exact = ipq_probability(issuer_pdf, SPEC, target)
        estimate = ipq_probability_monte_carlo(issuer_pdf, SPEC, target, 30_000, rng)
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_monte_carlo_rejects_bad_sample_count(self, rng):
        with pytest.raises(ValueError):
            ipq_probability_monte_carlo(UniformPdf(ISSUER_REGION), SPEC, Point(0.0, 0.0), 0, rng)


class TestIUQExactUniform:
    def test_fully_covered_object_has_probability_one(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject.uniform(1, Rect(200.0, 200.0, 300.0, 300.0))
        # Range half-width 500 covers the whole issuer-to-object configuration.
        assert iuq_probability_exact_uniform(issuer_pdf, target, SPEC) == pytest.approx(1.0)

    def test_distant_object_has_probability_zero(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject.uniform(1, Rect(5_000.0, 5_000.0, 5_100.0, 5_100.0))
        assert iuq_probability_exact_uniform(issuer_pdf, target, SPEC) == 0.0

    def test_probability_within_bounds(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject.uniform(1, Rect(800.0, 100.0, 1_000.0, 400.0))
        value = iuq_probability_exact_uniform(issuer_pdf, target, SPEC)
        assert 0.0 < value < 1.0

    def test_symmetric_configuration_gives_half(self):
        # Object strip centred exactly at the right edge of the expanded
        # query in x: half of the object's x-mass can ever qualify.
        issuer_pdf = UniformPdf(Rect(0.0, 0.0, 100.0, 100.0))
        spec = RangeQuerySpec(100.0, 100.0)
        # Expanded query spans x in [-100, 200]; an object spanning [150, 250]
        # symmetric around 200... use direct comparison to Monte-Carlo instead.
        target = UncertainObject.uniform(1, Rect(150.0, 0.0, 250.0, 100.0))
        exact = iuq_probability_exact_uniform(issuer_pdf, target, spec)
        mc = iuq_probability_monte_carlo(
            issuer_pdf, target, spec, 60_000, np.random.default_rng(5)
        )
        assert exact == pytest.approx(mc, abs=0.01)

    def test_rejects_non_uniform_target(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject(oid=1, pdf=TruncatedGaussianPdf(Rect(0.0, 0.0, 100.0, 100.0)))
        with pytest.raises(TypeError):
            iuq_probability_exact_uniform(issuer_pdf, target, SPEC)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_monte_carlo_on_random_configurations(self, seed):
        rng = np.random.default_rng(seed)
        issuer_region = Rect.from_center(
            Point(rng.uniform(400, 600), rng.uniform(400, 600)),
            rng.uniform(50, 300),
            rng.uniform(50, 300),
        )
        target_region = Rect.from_center(
            Point(rng.uniform(0, 1200), rng.uniform(0, 1200)),
            rng.uniform(20, 200),
            rng.uniform(20, 200),
        )
        spec = RangeQuerySpec(rng.uniform(100, 600), rng.uniform(100, 600))
        issuer_pdf = UniformPdf(issuer_region)
        target = UncertainObject.uniform(1, target_region)
        exact = iuq_probability_exact_uniform(issuer_pdf, target, spec)
        estimate = iuq_probability_monte_carlo(issuer_pdf, target, spec, 60_000, rng)
        assert exact == pytest.approx(estimate, abs=0.015)


class TestIUQDispatch:
    def test_uniform_uniform_uses_exact_path(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject.uniform(1, Rect(700.0, 100.0, 900.0, 300.0))
        assert iuq_probability(issuer_pdf, target, SPEC) == pytest.approx(
            iuq_probability_exact_uniform(issuer_pdf, target, SPEC)
        )

    def test_gaussian_target_semi_analytic_matches_full_monte_carlo(self, rng):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject(
            oid=1, pdf=TruncatedGaussianPdf(Rect(700.0, 100.0, 900.0, 300.0))
        )
        semi = iuq_probability(issuer_pdf, target, SPEC, grid_resolution=32)
        full = iuq_probability_monte_carlo(issuer_pdf, target, SPEC, 60_000, rng)
        assert semi == pytest.approx(full, abs=0.02)

    def test_sampled_semi_analytic_close_to_grid(self, rng):
        issuer_pdf = TruncatedGaussianPdf(ISSUER_REGION)
        target = UncertainObject(
            oid=1, pdf=TruncatedGaussianPdf(Rect(600.0, 200.0, 800.0, 400.0))
        )
        sampled = iuq_probability(issuer_pdf, target, SPEC, samples=4_000, rng=rng)
        grid = iuq_probability(issuer_pdf, target, SPEC, grid_resolution=32)
        assert sampled == pytest.approx(grid, abs=0.03)

    def test_monte_carlo_rejects_bad_sample_count(self, rng):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject.uniform(1, Rect(0.0, 0.0, 10.0, 10.0))
        with pytest.raises(ValueError):
            iuq_probability_monte_carlo(issuer_pdf, target, SPEC, 0, rng)


class TestClippedIntegrationRegion:
    def test_clipping_against_expanded_query(self):
        target_region = Rect(900.0, 0.0, 1_200.0, 400.0)
        expanded = Rect(-500.0, -500.0, 1_000.0, 1_000.0)
        assert clipped_integration_region(target_region, expanded) == Rect(
            900.0, 0.0, 1_000.0, 400.0
        )

    def test_disjoint_regions_clip_to_empty(self):
        assert clipped_integration_region(
            Rect(2_000.0, 2_000.0, 2_100.0, 2_100.0), Rect(0.0, 0.0, 1_000.0, 1_000.0)
        ).is_empty
