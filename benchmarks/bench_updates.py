"""Benchmark: live incremental updates vs full rebuilds under a serving load.

The paper's motivating objects *move*: position reports arrive continuously,
interleaved with queries.  Before the update subsystem the reproduction had
exactly one way to serve that workload — rebuild the database (index +
columnar snapshot + shards) whenever the collection changed.  This benchmark
replays that serving pattern over the California-like point dataset as
``rounds`` rounds of *U updates arrive, then Q queries are answered*:

* ``incremental`` — one live engine; each round applies the round's
  :class:`~repro.core.updates.UpdateBatch` through ``apply_updates`` and
  answers the queries (the lazily rebuilt columnar snapshot is paid here,
  not hidden);
* ``rebuild`` — the old world; each round rebuilds the database from the
  current collection before answering the same queries.

Both a single database (``ImpreciseQueryEngine``) and a K-shard
``ParallelEngine`` (serial in-process, hot-threshold re-splits armed) are
measured, and the two strategies' answers are asserted identical every
round before anything is reported.  Headline metrics:

* ``incremental_speedup`` — rebuild-total over incremental-total for the
  single database.  A ratio of two timings on the same machine, so it
  transfers across hardware; guarded by ``benchmarks/check_regression.py``.
* ``updates_per_second`` — mutation throughput of the live engine (moves,
  inserts and deletes at 80/10/10).

Results go to ``BENCH_updates.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_updates.py

Environment knobs: ``REPRO_BENCH_SCALE`` (dataset scale, default 0.25),
``REPRO_BENCH_ROUNDS`` (serving rounds, default 12),
``REPRO_BENCH_UPDATES`` (updates per round, default 50),
``REPRO_BENCH_QUERIES`` (queries per round, default 15),
``REPRO_BENCH_REPEATS`` (timing repetitions, default 2) and
``REPRO_BENCH_SHARDS`` (default 4).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.parallel import ParallelEngine
from repro.core.queries import RangeQuery
from repro.core.sharding import ShardedDatabase
from repro.datasets.tiger import DATA_SPACE, california_points
from repro.datasets.workload import QueryWorkload, UpdateWorkload

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_updates.json"

CONFIG = EngineConfig(draw_plan="per_oid")


def _round_queries(rounds: int, per_round: int) -> list[list[RangeQuery]]:
    workload = QueryWorkload(issuer_half_size=250.0, range_half_size=300.0, seed=2711)
    spec = workload.spec
    issuers = list(workload.issuers(rounds * per_round))
    return [
        [RangeQuery.ipq(issuer, spec) for issuer in issuers[r * per_round : (r + 1) * per_round]]
        for r in range(rounds)
    ]


def _round_updates(objects, rounds: int, per_round: int):
    stream = list(
        UpdateWorkload(bounds=DATA_SPACE, seed=9241).point_updates(
            [obj.oid for obj in objects], rounds * per_round
        )
    )
    from repro.core.updates import UpdateBatch

    return [
        UpdateBatch(stream[r * per_round : (r + 1) * per_round]) for r in range(rounds)
    ]


def _serve(engine_factory, rebuild_factory, objects, update_rounds, query_rounds):
    """One serving replay: returns (incremental seconds, rebuild seconds, u/s).

    The incremental engine lives across all rounds; the rebuild strategy
    reconstructs its engine from the incremental engine's current collection
    each round (so both see the identical data) and both answer the same
    queries, asserted equal round by round.
    """
    live = engine_factory(objects)
    incremental_seconds = 0.0
    rebuild_seconds = 0.0
    apply_seconds = 0.0
    updates_applied = 0
    for batch, queries in zip(update_rounds, query_rounds):
        started = time.perf_counter()
        live.apply_updates(batch)
        applied = time.perf_counter() - started
        apply_seconds += applied
        updates_applied += len(batch)
        started = time.perf_counter()
        live_results = live.evaluate_many(queries)
        incremental_seconds += applied + (time.perf_counter() - started)

        current = list(live.point_db.objects)
        started = time.perf_counter()
        rebuilt = rebuild_factory(current)
        rebuilt_results = rebuilt.evaluate_many(queries)
        rebuild_seconds += time.perf_counter() - started

        for expected, got in zip(rebuilt_results, live_results):
            assert expected.probabilities() == got.probabilities(), (
                "live-updated database diverged from the rebuilt database"
            )
    return incremental_seconds, rebuild_seconds, updates_applied / apply_seconds


def _measure(engine_factory, rebuild_factory, objects, update_rounds, query_rounds, repeats):
    best = (float("inf"), float("inf"), 0.0)
    for _ in range(repeats):
        incremental, rebuild, updates_per_second = _serve(
            engine_factory, rebuild_factory, objects, update_rounds, query_rounds
        )
        if incremental < best[0]:
            best = (incremental, rebuild, updates_per_second)
    incremental, rebuild, updates_per_second = best
    return {
        "incremental_seconds": incremental,
        "rebuild_seconds": rebuild,
        "updates_per_second": updates_per_second,
        "incremental_speedup": rebuild / incremental,
    }


def main() -> None:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "12"))
    updates_per_round = int(os.environ.get("REPRO_BENCH_UPDATES", "50"))
    queries_per_round = int(os.environ.get("REPRO_BENCH_QUERIES", "15"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
    shards = int(os.environ.get("REPRO_BENCH_SHARDS", "4"))

    objects = california_points(scale=scale)
    update_rounds = _round_updates(objects, rounds, updates_per_round)
    query_rounds = _round_queries(rounds, queries_per_round)

    single = _measure(
        lambda objs: ImpreciseQueryEngine(point_db=PointDatabase.build(objs), config=CONFIG),
        lambda objs: ImpreciseQueryEngine(point_db=PointDatabase.build(objs), config=CONFIG),
        objects,
        update_rounds,
        query_rounds,
        repeats,
    )
    hot_threshold = max(2, (2 * len(objects)) // shards)
    sharded = _measure(
        lambda objs: ParallelEngine(
            point_db=ShardedDatabase.build_points(objs, shards, hot_threshold=hot_threshold),
            config=CONFIG,
        ),
        lambda objs: ParallelEngine(
            point_db=ShardedDatabase.build_points(objs, shards), config=CONFIG
        ),
        objects,
        update_rounds,
        query_rounds,
        repeats,
    )

    report = {
        "benchmark": "updates",
        "dataset_scale": scale,
        "objects": len(objects),
        "rounds": rounds,
        "updates_per_round": updates_per_round,
        "queries_per_round": queries_per_round,
        "repeats": repeats,
        "shards": shards,
        "single": single,
        "sharded": sharded,
        "incremental_speedup": single["incremental_speedup"],
        "updates_per_second": single["updates_per_second"],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
