"""Smoke tests for the per-figure experiments (run at tiny scale).

These tests do not assert the paper's quantitative shapes — the dataset and
query counts are deliberately tiny to keep CI fast, and shape claims are the
benchmarks' job — but they do verify that every figure function runs end to
end, produces the expected series, and emits sane statistics.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    ALL_FIGURES,
    figure_08,
    figure_09,
    figure_11,
    figure_12,
    figure_13,
)


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        dataset_scale=0.005,
        queries_per_point=3,
        issuer_half_sizes=(250.0, 750.0),
        range_half_sizes=(500.0, 1000.0),
        thresholds=(0.0, 0.5),
        basic_issuer_samples=64,
        monte_carlo_samples=32,
    )


class TestRegistry:
    def test_all_six_figures_registered(self):
        assert set(ALL_FIGURES) == {
            "figure_08",
            "figure_09",
            "figure_10",
            "figure_11",
            "figure_12",
            "figure_13",
        }


class TestFigure08:
    def test_series_and_points(self, tiny_config):
        result = figure_08(tiny_config)
        assert set(result.series_names()) == {"basic", "enhanced"}
        assert result.x_values() == [250.0, 750.0]
        assert all(p.response_time_ms > 0 for p in result.series["basic"])

    def test_basic_is_slower_even_at_tiny_scale(self, tiny_config):
        result = figure_08(tiny_config)
        assert result.mean_ratio("basic", "enhanced") > 1.0


class TestFigure09And10:
    def test_figure_09_series(self, tiny_config):
        result = figure_09(tiny_config)
        assert set(result.series_names()) == {"range_size=500", "range_size=1000"}
        for series in result.series.values():
            assert len(series) == 2

    def test_figure_10_runs(self, tiny_config):
        result = ALL_FIGURES["figure_10"](tiny_config)
        assert len(result.series) == 2
        assert all(p.candidates >= 0 for pts in result.series.values() for p in pts)


class TestFigure11And12:
    def test_figure_11_series(self, tiny_config):
        result = figure_11(tiny_config)
        assert set(result.series_names()) == {"minkowski_sum", "p_expanded_query"}
        assert result.x_values() == [0.0, 0.5]

    def test_figure_11_p_expansion_examines_no_more_candidates(self, tiny_config):
        result = figure_11(tiny_config)
        for x in result.x_values():
            assert (
                result.value_at("p_expanded_query", x).candidates
                <= result.value_at("minkowski_sum", x).candidates
            )

    def test_figure_12_series(self, tiny_config):
        result = figure_12(tiny_config)
        assert set(result.series_names()) == {"minkowski_sum", "pti_p_expanded_query"}

    def test_figure_12_pti_examines_no_more_candidates(self, tiny_config):
        result = figure_12(tiny_config)
        for x in result.x_values():
            if x == 0.0:
                continue
            assert (
                result.value_at("pti_p_expanded_query", x).candidates
                <= result.value_at("minkowski_sum", x).candidates
            )


class TestFigure13:
    def test_runs_with_gaussian_issuers(self, tiny_config):
        result = figure_13(tiny_config)
        assert set(result.series_names()) == {"minkowski_sum", "p_expanded_query"}
        assert "Gaussian" in result.notes
