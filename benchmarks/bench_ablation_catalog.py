"""Ablation — U-catalog resolution (number of stored p-bound levels).

The paper stores ten p-bounds per object (Section 6.1) and six in the
description of Section 5.2.  This ablation measures C-IUQ cost at Qp = 0.6 as
the catalog resolution varies: more levels allow the pruning rules to round
the threshold less coarsely, at the cost of larger pre-computed structures.
"""

import numpy as np
import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import ImpreciseQueryEngine, UncertainDatabase

from benchmarks.conftest import issuer_for

THRESHOLD = 0.6
CATALOG_SIZES = [2, 3, 6, 11]


@pytest.fixture(scope="module", params=CATALOG_SIZES)
def database_with_catalog_size(request, uncertain_objects):
    levels = tuple(np.linspace(0.0, 0.5, request.param))
    objects = [obj.with_catalog(levels) for obj in uncertain_objects]
    return request.param, UncertainDatabase.build(objects, index_kind="pti", catalog_levels=None)


def test_ciuq_catalog_resolution(benchmark, database_with_catalog_size):
    """C-IUQ at Qp = 0.6 with the given number of stored catalog levels."""
    size, database = database_with_catalog_size
    engine = ImpreciseQueryEngine(uncertain_db=database)
    issuer, spec = issuer_for(250.0, threshold=THRESHOLD)
    benchmark.extra_info["catalog_levels"] = size
    result = benchmark(lambda: engine.evaluate(RangeQuery.ciuq(issuer, spec, THRESHOLD)))
    assert all(answer.probability >= THRESHOLD for answer in result)
