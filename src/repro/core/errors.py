"""Typed exception hierarchy shared by the engines and the serving layer.

Historically the repository raised bare ``ValueError``/``TypeError`` wherever a
request was malformed, which worked for a single-process library but leaves a
wire protocol with nothing to dispatch on: a server must map *kinds* of
failure to structured error responses, and a client must rebuild the same
kind on its side.  Every failure a request can provoke now derives from
:class:`ReproError` and carries a stable machine-readable :attr:`~ReproError.wire_code`
used by :mod:`repro.serve.schemas` as the error model's discriminator.

Backwards compatibility: each subclass keeps the builtin its call sites used
to raise as a *second* base (``InvalidQueryError`` is still a ``ValueError``,
``BackpressureError`` is a ``RuntimeError``), so existing ``except ValueError``
handlers and tests keep working unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every structured error raised by the reproduction.

    ``wire_code`` is the stable identifier shipped inside error envelopes;
    :func:`repro.serve.schemas.error_from_dict` maps it back to the matching
    subclass on the client side.
    """

    wire_code: str = "error"


class ConfigurationError(ReproError, ValueError):
    """A session, engine or server was assembled from contradictory parts."""

    wire_code = "configuration"


class InvalidQueryError(ReproError, ValueError):
    """A query (or query builder) was given out-of-domain parameters."""

    wire_code = "invalid_query"


class InvalidUpdateError(ReproError, ValueError):
    """An update operation was malformed (contradictory or missing fields)."""

    wire_code = "invalid_update"


class UnknownObjectError(ReproError, ValueError):
    """A delete/move named an oid the target database does not hold."""

    wire_code = "unknown_object"


class BackpressureError(ReproError, RuntimeError):
    """The serving front-end's request queue is past its high-water mark.

    Raised *immediately* on submission (the request is never queued), so a
    client can back off and retry; the dispatch loop is unaffected.
    """

    wire_code = "backpressure"


class SchemaError(ReproError, ValueError):
    """A wire payload is not a valid instance of the expected schema."""

    wire_code = "schema"


class SchemaVersionError(SchemaError):
    """A wire payload carries a schema version this build cannot decode."""

    wire_code = "schema_version"
