"""Micro-benchmark: per-query ``evaluate()`` loop vs ``evaluate_many()``.

Reproduces the paper's batch methodology (Figure 9's workload: 500 uniform
queries per data point over the California-like point dataset) through both
execution paths and reports throughput in queries per second.  Results are
written to ``BENCH_api_batch.json`` next to the repository root so CI and
future sessions can track the batch path's overhead.

Run with::

    PYTHONPATH=src python benchmarks/bench_api_batch.py

Environment knobs: ``REPRO_BENCH_SCALE`` (dataset scale, default 0.02),
``REPRO_BENCH_QUERIES`` (batch size, default 500) and ``REPRO_BENCH_REPEATS``
(timing repetitions, default 3).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.queries import RangeQuery
from repro.datasets.tiger import california_points
from repro.datasets.workload import QueryWorkload

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_api_batch.json"


def _build_queries(count: int) -> list[RangeQuery]:
    workload = QueryWorkload(
        issuer_half_size=250.0, range_half_size=500.0, seed=4711
    )
    spec = workload.spec
    return [RangeQuery.ipq(issuer, spec) for issuer in workload.issuers(count)]


def _fresh_engine(scale: float) -> ImpreciseQueryEngine:
    database = PointDatabase.build(california_points(scale=scale))
    return ImpreciseQueryEngine(point_db=database, config=EngineConfig())


def _time_interleaved(runs: dict[str, object], repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` wall-clock time per run, in seconds.

    The contenders are interleaved within each repeat so that clock-frequency
    drift or cache warm-up does not systematically favour whichever path
    happens to be measured last.
    """
    best = {name: float("inf") for name in runs}
    for _ in range(repeats):
        for name, run in runs.items():
            started = time.perf_counter()
            run()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def main() -> dict:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
    count = int(os.environ.get("REPRO_BENCH_QUERIES", "500"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    queries = _build_queries(count)

    # Fresh engines per path so neither benefits from the other's warm state;
    # a throwaway first run per path pays the one-time import/JIT costs.
    loop_engine = _fresh_engine(scale)
    batch_engine = _fresh_engine(scale)

    # The loop collects its results like evaluate_many does, so the two
    # paths produce (and keep alive) the same output and the comparison
    # isolates the execution machinery.
    def per_query_loop() -> list:
        return [loop_engine.evaluate(query) for query in queries]

    def batch() -> list:
        return batch_engine.evaluate_many(queries)

    per_query_loop()
    batch()
    timings = _time_interleaved(
        {"per_query_loop": per_query_loop, "evaluate_many": batch}, repeats
    )
    loop_seconds = timings["per_query_loop"]
    batch_seconds = timings["evaluate_many"]

    report = {
        "benchmark": "api_batch",
        "dataset_scale": scale,
        "queries": count,
        "repeats": repeats,
        "per_query_loop": {
            "seconds": loop_seconds,
            "queries_per_second": count / loop_seconds,
        },
        "evaluate_many": {
            "seconds": batch_seconds,
            "queries_per_second": count / batch_seconds,
        },
        "batch_speedup": loop_seconds / batch_seconds,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {OUTPUT_PATH}")
    return report


if __name__ == "__main__":
    main()
