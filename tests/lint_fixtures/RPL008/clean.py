# lint-fixture-path: repro/core/example.py
"""Narrow types, explicit suppress, handlers with bodies, __del__ exemption."""

import contextlib
import logging


def release(block):
    try:
        block.close()
    except OSError:
        pass
    with contextlib.suppress(Exception):
        block.unlink()


def probe(path):
    try:
        return path.stat()
    except Exception as error:
        logging.getLogger(__name__).warning("probe failed: %s", error)
        return None


class Engine:
    def __del__(self):
        # Finalizers may swallow broadly: teardown must never raise.
        try:
            self.close()
        except Exception:
            pass
