"""Live-update batches: ordered insert/delete/move streams for the engines.

The paper's motivating objects *move* — cabs, patrols and privacy-cloaked
users report fresh positions between queries — so updates are a first-class
input next to queries, not a rebuild trigger.  An :class:`UpdateBatch` is an
ordered list of mutations that both engines accept:

* applied directly via ``engine.apply_updates(batch)`` (or the per-operation
  ``engine.insert`` / ``engine.delete`` / ``engine.move``), or
* *interleaved* with queries inside ``evaluate_many``: an ``UpdateBatch``
  appearing in the workload iterable is applied at exactly that point in the
  stream, queries before it see the old data, queries after it the new.

Updates never consume query sequence numbers, so under the per-oid draw plan
a query's Monte-Carlo draws — keyed by ``(rng_seed, query_seq, oid)`` — stay
bitwise-identical no matter how many unrelated updates ran before it.  That
is the invariant that lets a live-mutated database answer exactly like a
from-scratch rebuild of the same final collection.

Example::

    batch = (
        UpdateBatch()
        .insert(PointObject.at(901, 4200.0, 880.0))
        .move(17, x=3950.0, y=1020.0)
        .delete(23)
    )
    session.evaluate_many([query_a, batch, query_b])  # query_b sees the updates
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Literal

from repro.core.errors import (
    EngineStateError,
    InvalidUpdateError,
    SchemaError,
    UnknownObjectError,
)
from repro.core.wire import check_schema, require, tagged

UpdateAction = Literal["insert", "delete", "move"]
UpdateTarget = Literal["points", "uncertain"]

#: Wire schema names of the update payloads (see :mod:`repro.core.wire`).
UPDATE_OP_SCHEMA = "repro.update_op"
UPDATE_BATCH_SCHEMA = "repro.update_batch"


def resolve_move_target(
    x: float | None, y: float | None, pdf: Any, target: UpdateTarget | None
) -> UpdateTarget:
    """Infer (and validate) which database a move addresses.

    ``x``/``y`` imply a point object, ``pdf`` an uncertain one; mixing the
    forms, providing neither in full, or passing a contradicting ``target``
    is rejected.  The single validation used by :meth:`UpdateBatch.move` and
    both engines' ``move`` methods, so every layer accepts and rejects the
    same shapes.
    """
    if pdf is not None and (x is not None or y is not None):
        raise InvalidUpdateError(
            "pass either x= and y= (points) or pdf= (uncertain), not both"
        )
    if pdf is not None:
        inferred: UpdateTarget = "uncertain"
    elif x is not None and y is not None:
        inferred = "points"
    else:
        raise InvalidUpdateError("a move takes either x= and y= (points) or pdf= (uncertain)")
    if target is not None and target != inferred:
        raise InvalidUpdateError(
            f"target {target!r} contradicts the move arguments (which imply {inferred!r})"
        )
    return inferred


def pick_mutation_database(point_db: Any, uncertain_db: Any, target: str | None) -> Any:
    """The database a ``delete`` addresses, shared by both engines.

    ``target`` picks explicitly; ``None`` resolves to the only database the
    engine holds (ambiguous with both present).
    """
    if target is None:
        if point_db is not None and uncertain_db is None:
            target = "points"
        elif uncertain_db is not None and point_db is None:
            target = "uncertain"
        else:
            raise InvalidUpdateError(
                "the engine holds both databases; "
                "pass target='points' or target='uncertain'"
            )
    elif target not in ("points", "uncertain"):
        raise InvalidUpdateError(f"unknown target database: {target!r}")
    database = point_db if target == "points" else uncertain_db
    if database is None:
        noun = "point-object" if target == "points" else "uncertain-object"
        raise EngineStateError(f"no {noun} database configured")
    return database


@dataclass(frozen=True)
class UpdateOp:
    """One mutation: an insert payload, a delete key, or a move key + position.

    ``target`` disambiguates which database a ``delete``/``move`` refers to
    when a session holds both; ``None`` lets the engine pick its only (or the
    inferred) database.
    """

    action: UpdateAction
    obj: Any = None
    oid: int | None = None
    x: float | None = None
    y: float | None = None
    pdf: Any = None
    target: UpdateTarget | None = None

    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of this mutation."""
        return tagged(
            UPDATE_OP_SCHEMA,
            {
                "action": self.action,
                "obj": None if self.obj is None else self.obj.to_dict(),
                "oid": self.oid,
                "x": self.x,
                "y": self.y,
                "pdf": None if self.pdf is None else self.pdf.to_dict(),
                "target": self.target,
            },
        )

    @classmethod
    def from_dict(cls, payload) -> "UpdateOp":
        """Decode a :meth:`to_dict` payload."""
        from repro.uncertainty.pdf import pdf_from_dict

        payload = check_schema(payload, UPDATE_OP_SCHEMA)
        action = require(payload, UPDATE_OP_SCHEMA, "action")
        if action not in ("insert", "delete", "move"):
            raise SchemaError(f"unknown update action {action!r}")
        obj = require(payload, UPDATE_OP_SCHEMA, "obj")
        oid = require(payload, UPDATE_OP_SCHEMA, "oid")
        x = require(payload, UPDATE_OP_SCHEMA, "x")
        y = require(payload, UPDATE_OP_SCHEMA, "y")
        pdf = require(payload, UPDATE_OP_SCHEMA, "pdf")
        return cls(
            action=action,
            obj=None if obj is None else _object_from_dict(obj),
            oid=None if oid is None else int(oid),
            x=None if x is None else float(x),
            y=None if y is None else float(y),
            pdf=None if pdf is None else pdf_from_dict(pdf),
            target=require(payload, UPDATE_OP_SCHEMA, "target"),
        )


def _object_from_dict(payload: Any) -> Any:
    """Decode an insert payload: a point or uncertain object, by schema name."""
    from repro.uncertainty.region import (
        POINT_OBJECT_SCHEMA,
        UNCERTAIN_OBJECT_SCHEMA,
        PointObject,
        UncertainObject,
    )

    schema = payload.get("schema") if isinstance(payload, dict) else None
    if schema == POINT_OBJECT_SCHEMA:
        return PointObject.from_dict(payload)
    if schema == UNCERTAIN_OBJECT_SCHEMA:
        return UncertainObject.from_dict(payload)
    raise SchemaError(
        f"an insert payload must be a {POINT_OBJECT_SCHEMA!r} or "
        f"{UNCERTAIN_OBJECT_SCHEMA!r} object, got schema {schema!r}"
    )


@dataclass(frozen=True)
class UpdateEvent:
    """One *applied* mutation, as reported to update observers.

    Where :class:`UpdateOp` is the declarative request, an ``UpdateEvent``
    is the receipt: it names the database kind actually mutated, the MBRs
    the object occupied before and after (``None`` on the missing side of
    an insert/delete), and — when the mutation went through a
    :class:`~repro.core.sharding.ShardedDatabase` — the shard ids it
    touched (source and target for a cross-shard move).  Continuous
    subscriptions consume these events to decide which standing queries a
    mutation can possibly affect.
    """

    op: UpdateOp
    target: UpdateTarget
    oid: int
    before: Any = None
    after: Any = None
    sids: tuple[int, ...] = ()

    @property
    def region(self) -> Any:
        """The bounding rectangle of everywhere the mutation touched."""
        if self.before is None:
            return self.after
        if self.after is None:
            return self.before
        return self.before.union_bounds(self.after)


class MutationObservable:
    """Mixin that lets databases report applied mutations to observers.

    Observers are callables taking one :class:`UpdateEvent`; they run
    synchronously, in registration order, *after* the mutation completed.
    The hook costs one attribute lookup when nobody is subscribed.  Only
    the public mutator surface (``insert`` / ``delete`` / ``move``) emits
    events — editing ``db.objects`` out of band is not observed, matching
    the repository-wide contract that live data changes go through the
    mutators.  Observer lists are deliberately excluded from pickling
    (worker snapshots must not drag subscription state across processes).
    """

    def add_update_observer(self, observer: Callable[[UpdateEvent], None]) -> None:
        """Register ``observer`` to be called after each applied mutation."""
        observers = getattr(self, "_update_observers", None)
        if observers is None:
            observers = []
            self._update_observers = observers
        observers.append(observer)

    def remove_update_observer(self, observer: Callable[[UpdateEvent], None]) -> None:
        """Unregister a previously added observer (no-op when absent)."""
        observers = getattr(self, "_update_observers", None)
        if observers is not None and observer in observers:
            observers.remove(observer)

    def _emit_update(self, event: UpdateEvent) -> None:
        observers = getattr(self, "_update_observers", None)
        if observers:
            for observer in list(observers):
                observer(event)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_update_observers", None)
        return state


class UpdateBatch:
    """An ordered, append-only batch of live mutations.

    Builder-style: each call appends one operation and returns the batch, so
    streams read like the update log they model.  Application order is the
    append order.
    """

    def __init__(self, ops: Iterator[UpdateOp] | list[UpdateOp] | None = None) -> None:
        self._ops: list[UpdateOp] = list(ops) if ops is not None else []

    def insert(self, obj: Any) -> "UpdateBatch":
        """Queue an object insertion (a ``PointObject`` or ``UncertainObject``)."""
        self._ops.append(UpdateOp(action="insert", obj=obj))
        return self

    def delete(self, oid: int, *, target: UpdateTarget | None = None) -> "UpdateBatch":
        """Queue a deletion by object id."""
        self._ops.append(UpdateOp(action="delete", oid=int(oid), target=target))
        return self

    def move(
        self,
        oid: int,
        *,
        x: float | None = None,
        y: float | None = None,
        pdf: Any = None,
        target: UpdateTarget | None = None,
    ) -> "UpdateBatch":
        """Queue a relocation: ``x``/``y`` for a point object, ``pdf`` for an
        uncertain one."""
        resolve_move_target(x, y, pdf, target)
        self._ops.append(
            UpdateOp(action="move", oid=int(oid), x=x, y=y, pdf=pdf, target=target)
        )
        return self

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[UpdateOp]:
        return iter(self._ops)

    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of the whole batch, in order."""
        return tagged(UPDATE_BATCH_SCHEMA, {"ops": [op.to_dict() for op in self._ops]})

    @classmethod
    def from_dict(cls, payload) -> "UpdateBatch":
        """Decode a :meth:`to_dict` payload, preserving application order."""
        payload = check_schema(payload, UPDATE_BATCH_SCHEMA)
        return cls(
            [UpdateOp.from_dict(op) for op in require(payload, UPDATE_BATCH_SCHEMA, "ops")]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        counts: dict[str, int] = {}
        for op in self._ops:
            counts[op.action] = counts.get(op.action, 0) + 1
        summary = ", ".join(f"{count} {action}" for action, count in counts.items())
        return f"UpdateBatch({summary or 'empty'})"


def _describe_mutation_target(engine: Any, op: UpdateOp) -> str:
    """Best-effort name of the database an ``op`` addresses, for error text."""
    if op.action == "move":
        try:
            return resolve_move_target(op.x, op.y, op.pdf, op.target)
        except InvalidUpdateError:
            return op.target or "unresolved"
    if op.target is not None:
        return op.target
    point_db = getattr(engine, "point_db", None)
    uncertain_db = getattr(engine, "uncertain_db", None)
    if point_db is not None and uncertain_db is None:
        return "points"
    if uncertain_db is not None and point_db is None:
        return "uncertain"
    return "unresolved"


def apply_update_op(engine: Any, op: UpdateOp) -> None:
    """Apply one operation through an engine's mutation surface.

    Both :class:`~repro.core.engine.ImpreciseQueryEngine` and
    :class:`~repro.core.parallel.ParallelEngine` expose the same
    ``insert`` / ``delete`` / ``move`` methods; this helper is the single
    translation from the declarative :class:`UpdateOp` to those calls.

    A ``delete`` or ``move`` naming an oid the target database does not
    hold raises a descriptive :class:`~repro.core.errors.UnknownObjectError`
    (naming the oid and the database) instead of surfacing the index layer's
    bare ``KeyError``.
    """
    if op.action == "insert":
        engine.insert(op.obj)
    elif op.action == "delete":
        try:
            engine.delete(op.oid, target=op.target)
        except KeyError as error:
            raise UnknownObjectError(
                f"cannot delete oid {op.oid}: no such object in the "
                f"{_describe_mutation_target(engine, op)!r} database"
            ) from error
    elif op.action == "move":
        try:
            engine.move(op.oid, x=op.x, y=op.y, pdf=op.pdf, target=op.target)
        except KeyError as error:
            raise UnknownObjectError(
                f"cannot move oid {op.oid}: no such object in the "
                f"{_describe_mutation_target(engine, op)!r} database"
            ) from error
    else:  # pragma: no cover - UpdateOp constrains the action literal
        raise InvalidUpdateError(f"unknown update action: {op.action!r}")
