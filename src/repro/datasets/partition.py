"""Spatial partitioners for sharded databases.

A partitioner splits a collection of spatial objects into ``k`` disjoint
parts by the objects' MBR centres.  Two deterministic families are provided:

* *grid* — the data-space bounding rectangle is cut into a ``rows × cols``
  grid with ``rows · cols == k`` (``rows`` is the largest divisor of ``k``
  not exceeding ``√k``, so the cells stay as square as the factorisation
  allows).  Cells are cheap to compute and align with how PTI-style indexes
  are deployed per region in practice, but skewed data can leave cells
  empty.
* *median* — recursive median splits (a KD-tree construction): the widest
  axis of the current subset is split at the subset's median so that child
  part counts stay proportional.  Parts are balanced within one object even
  under heavy skew, at the cost of data-dependent boundaries.

Both partitioners return a shard assignment per object and preserve the
input order inside every part, so partitioning with ``k = 1`` reproduces the
original collection exactly.
"""

from __future__ import annotations
from repro.errors import DatasetError

from typing import Literal, Sequence

import numpy as np

from repro.geometry.rect import Rect

PartitionMethod = Literal["grid", "median"]

PARTITION_METHODS: tuple[PartitionMethod, ...] = ("grid", "median")


def mbr_centers(objects: Sequence) -> np.ndarray:
    """``(N, 2)`` array of the objects' MBR centre coordinates.

    Works for anything exposing an ``mbr`` rectangle (point objects have a
    degenerate MBR, so their centre is the location itself).
    """
    centers = np.empty((len(objects), 2), dtype=float)
    for row, obj in enumerate(objects):
        center = obj.mbr.center
        centers[row, 0] = center.x
        centers[row, 1] = center.y
    return centers


def _grid_shape(k: int) -> tuple[int, int]:
    """``(rows, cols)`` with ``rows * cols == k`` and rows ≤ cols, near-square."""
    rows = 1
    for candidate in range(1, int(np.sqrt(k)) + 1):
        if k % candidate == 0:
            rows = candidate
    return rows, k // rows


def grid_assignments(centers: np.ndarray, k: int, bounds: Rect) -> np.ndarray:
    """Assign each centre to one cell of a ``k``-cell grid over ``bounds``.

    Cell ids run row-major from the bottom-left.  Centres outside ``bounds``
    clamp into the nearest edge cell, so every object receives a shard.
    """
    if k < 1:
        raise DatasetError(f"k must be >= 1, got {k}")
    if bounds.is_empty:
        raise DatasetError("grid partitioning needs a non-empty bounding rectangle")
    rows, cols = _grid_shape(k)
    width = bounds.width or 1.0
    height = bounds.height or 1.0
    ix = np.clip(((centers[:, 0] - bounds.xmin) / width * cols).astype(int), 0, cols - 1)
    iy = np.clip(((centers[:, 1] - bounds.ymin) / height * rows).astype(int), 0, rows - 1)
    return iy * cols + ix


def median_assignments(centers: np.ndarray, k: int) -> np.ndarray:
    """Assign each centre to one of ``k`` parts by recursive median splits.

    At every step the current subset is split on its wider axis at the
    position that sends ``round(n · k_left / k)`` objects to the left child
    (argsort with a stable kind, so equal coordinates keep input order and
    the result is deterministic).  Shard ids are allocated depth-first
    left-to-right.
    """
    if k < 1:
        raise DatasetError(f"k must be >= 1, got {k}")
    assignments = np.zeros(centers.shape[0], dtype=np.int64)

    def split(indices: np.ndarray, parts: int, first_sid: int) -> None:
        if parts == 1 or indices.size == 0:
            assignments[indices] = first_sid
            return
        left_parts = parts // 2
        subset = centers[indices]
        spans = subset.max(axis=0) - subset.min(axis=0)
        axis = 0 if spans[0] >= spans[1] else 1
        order = np.argsort(subset[:, axis], kind="stable")
        n_left = int(round(indices.size * left_parts / parts))
        n_left = min(max(n_left, 0), indices.size)
        split(np.sort(indices[order[:n_left]]), left_parts, first_sid)
        split(np.sort(indices[order[n_left:]]), parts - left_parts, first_sid + left_parts)

    split(np.arange(centers.shape[0]), k, 0)
    return assignments


def partition_assignments(
    centers: np.ndarray,
    k: int,
    *,
    method: PartitionMethod = "grid",
    bounds: Rect | None = None,
) -> np.ndarray:
    """Shard assignment per centre, dispatching on the partition ``method``.

    ``bounds`` is required by the grid partitioner; when omitted it is
    computed from the centres themselves.
    """
    if method not in PARTITION_METHODS:
        raise DatasetError(
            f"unknown partition method {method!r}; expected one of {PARTITION_METHODS}"
        )
    centers = np.asarray(centers, dtype=float)
    if centers.ndim != 2 or centers.shape[1] != 2:
        raise DatasetError(f"centers must have shape (N, 2), got {centers.shape}")
    if centers.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    if method == "median":
        return median_assignments(centers, k)
    if bounds is None:
        bounds = Rect(
            float(centers[:, 0].min()),
            float(centers[:, 1].min()),
            float(centers[:, 0].max()),
            float(centers[:, 1].max()),
        )
    return grid_assignments(centers, k, bounds)
