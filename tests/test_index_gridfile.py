"""Unit tests for the grid-file index."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.index.gridfile import GridFile
from repro.uncertainty.region import PointObject

SPACE = Rect(0.0, 0.0, 1000.0, 1000.0)


def _objects(n: int, seed: int = 0) -> list[PointObject]:
    rng = np.random.default_rng(seed)
    return [
        PointObject.at(i, float(x), float(y))
        for i, (x, y) in enumerate(
            zip(rng.uniform(0.0, 1000.0, size=n), rng.uniform(0.0, 1000.0, size=n))
        )
    ]


class TestConstruction:
    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            GridFile(Rect.empty())

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            GridFile(SPACE, cells_per_axis=0)

    def test_rejects_empty_mbr_insert(self):
        grid = GridFile(SPACE)
        with pytest.raises(ValueError):
            grid.insert(Rect.empty(), "x")

    def test_bulk_load(self):
        grid = GridFile.bulk_load(_objects(100), bounds=SPACE, cells_per_axis=16)
        assert len(grid) == 100
        assert grid.cells_per_axis == 16


class TestQueries:
    @pytest.fixture()
    def grid(self):
        objects = _objects(400, seed=4)
        return GridFile.bulk_load(objects, bounds=SPACE, cells_per_axis=20), objects

    def test_range_search_matches_brute_force(self, grid):
        index, objects = grid
        query = Rect(100.0, 200.0, 400.0, 600.0)
        expected = {o.oid for o in objects if query.contains_point(o.location)}
        assert {o.oid for o in index.range_search(query)} == expected

    def test_whole_space_returns_everything(self, grid):
        index, objects = grid
        assert len(index.range_search(SPACE)) == len(objects)

    def test_empty_query(self, grid):
        index, _ = grid
        assert index.range_search(Rect.empty()) == []

    def test_query_outside_bounds(self, grid):
        index, _ = grid
        assert index.range_search(Rect(2000.0, 2000.0, 3000.0, 3000.0)) == []

    def test_no_duplicates_for_spanning_rectangles(self):
        grid = GridFile(SPACE, cells_per_axis=10)
        big = Rect(50.0, 50.0, 650.0, 650.0)  # spans many cells
        grid.insert(big, "big")
        results = grid.range_search(Rect(0.0, 0.0, 1000.0, 1000.0))
        assert results == ["big"]

    def test_out_of_bounds_insert_round_trip(self):
        """Regression: an MBR outside the declared bounds used to be clamped
        into edge cells, making it unreachable by in-bounds query windows."""
        grid = GridFile(SPACE, cells_per_axis=10)
        grid.insert(Rect(100.0, 100.0, 120.0, 120.0), "inside")
        outside = Rect(5_000.0, 5_000.0, 5_050.0, 5_050.0)
        grid.insert(outside, "outside")
        assert grid.bounds.contains_rect(outside)  # the data space extended
        assert grid.range_search(Rect(5_010.0, 5_010.0, 5_020.0, 5_020.0)) == ["outside"]
        assert set(grid.range_search(grid.bounds)) == {"inside", "outside"}
        # The original members survived the re-registration unchanged.
        assert grid.range_search(Rect(90.0, 90.0, 130.0, 130.0)) == ["inside"]

    def test_delete_and_update_round_trip(self):
        grid = GridFile(SPACE, cells_per_axis=10)
        spanning = Rect(50.0, 50.0, 650.0, 650.0)
        grid.insert(spanning, "a")
        grid.insert(Rect(700.0, 700.0, 720.0, 720.0), "b")
        grid.delete(spanning, "a")
        assert grid.range_search(SPACE) == ["b"]
        assert len(grid) == 1
        grid.update(Rect(700.0, 700.0, 720.0, 720.0), Rect(10.0, 10.0, 20.0, 20.0), "b")
        assert grid.range_search(Rect(0.0, 0.0, 30.0, 30.0)) == ["b"]
        with pytest.raises(KeyError):
            grid.delete(spanning, "a")

    def test_bucket_access_counting(self, grid):
        index, _ = grid
        index.stats.reset()
        index.range_search(Rect(0.0, 0.0, 100.0, 100.0))
        small = index.stats.node_accesses
        index.stats.reset()
        index.range_search(SPACE)
        full = index.stats.node_accesses
        assert 0 < small < full
        assert full == index.cells_per_axis ** 2
