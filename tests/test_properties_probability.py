"""Property-based tests for the probability machinery.

These cover the invariants the paper's correctness rests on: probabilities
are proper probabilities, p-bounds really bound tail mass, the duality
formula agrees with the definition-based basic method, and threshold pruning
never discards a qualifying object.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.basic import basic_ipq_probability
from repro.core.duality import (
    ipq_probability,
    iuq_probability_exact_uniform,
)
from repro.core.expansion import minkowski_expanded_query, p_expanded_query
from repro.core.pruning import CIUQPruner
from repro.core.queries import RangeQuerySpec
from repro.uncertainty.catalog import UCatalog
from repro.uncertainty.pbound import compute_pbound
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import UncertainObject

coords = st.floats(min_value=0.0, max_value=2_000.0, allow_nan=False)
sizes = st.floats(min_value=10.0, max_value=500.0, allow_nan=False)
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def regions(draw) -> Rect:
    x = draw(coords)
    y = draw(coords)
    return Rect(x, y, x + draw(sizes), y + draw(sizes))


@st.composite
def specs(draw) -> RangeQuerySpec:
    return RangeQuerySpec(draw(sizes), draw(sizes))


class TestProbabilityRange:
    @settings(max_examples=60)
    @given(regions(), specs(), coords, coords)
    def test_ipq_probability_in_unit_interval(self, issuer_region, spec, x, y):
        value = ipq_probability(UniformPdf(issuer_region), spec, Point(x, y))
        assert 0.0 <= value <= 1.0

    @settings(max_examples=60)
    @given(regions(), regions(), specs())
    def test_iuq_probability_in_unit_interval(self, issuer_region, target_region, spec):
        issuer = UniformPdf(issuer_region)
        target = UncertainObject.uniform(1, target_region)
        value = iuq_probability_exact_uniform(issuer, target, spec)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=40)
    @given(regions(), specs(), coords, coords)
    def test_gaussian_ipq_probability_in_unit_interval(self, issuer_region, spec, x, y):
        value = ipq_probability(TruncatedGaussianPdf(issuer_region), spec, Point(x, y))
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestDualityAgreesWithDefinition:
    @settings(max_examples=25, deadline=None)
    @given(regions(), specs(), coords, coords)
    def test_duality_matches_basic_method(self, issuer_region, spec, x, y):
        """Lemma 3 (duality) and Equation 2 (definition) agree."""
        issuer = UniformPdf(issuer_region)
        location = Point(x, y)
        duality = ipq_probability(issuer, spec, location)
        definition = basic_ipq_probability(issuer, spec, location, issuer_samples=900)
        assert abs(duality - definition) < 0.05


class TestExpansionProperties:
    @settings(max_examples=60)
    @given(regions(), specs(), probabilities)
    def test_p_expanded_query_inside_minkowski(self, issuer_region, spec, p):
        pdf = UniformPdf(issuer_region)
        minkowski = minkowski_expanded_query(issuer_region, spec)
        expanded = p_expanded_query(pdf, spec, p)
        assert minkowski.contains_rect(expanded)

    @settings(max_examples=60)
    @given(regions(), specs(), probabilities, probabilities)
    def test_p_expanded_query_monotone_in_p(self, issuer_region, spec, p1, p2):
        low, high = min(p1, p2), max(p1, p2)
        pdf = UniformPdf(issuer_region)
        assert p_expanded_query(pdf, spec, low).contains_rect(p_expanded_query(pdf, spec, high))

    @settings(max_examples=40)
    @given(regions(), specs(), coords, coords)
    def test_zero_probability_outside_minkowski_sum(self, issuer_region, spec, x, y):
        """Lemma 1: objects outside R ⊕ U0 have zero qualification probability."""
        location = Point(x, y)
        expanded = minkowski_expanded_query(issuer_region, spec)
        assume(not expanded.contains_point(location))
        assert ipq_probability(UniformPdf(issuer_region), spec, location) == 0.0

    @settings(max_examples=40)
    @given(regions(), specs(), coords, coords, st.floats(min_value=0.05, max_value=0.5))
    def test_points_outside_p_expanded_query_below_threshold(
        self, issuer_region, spec, x, y, p
    ):
        """Definition 7: outside the p-expanded-query the probability is below p."""
        pdf = UniformPdf(issuer_region)
        location = Point(x, y)
        expanded = p_expanded_query(pdf, spec, p)
        assume(not expanded.contains_point(location))
        assert ipq_probability(pdf, spec, location) <= p + 1e-9


class TestPBoundProperties:
    @settings(max_examples=60)
    @given(regions(), st.floats(min_value=0.0, max_value=0.5))
    def test_tail_mass_matches_p(self, region, p):
        pdf = UniformPdf(region)
        bound = compute_pbound(pdf, p)
        left_tail = pdf.probability_in_rect(Rect(region.xmin, region.ymin, bound.left, region.ymax))
        right_tail = pdf.probability_in_rect(
            Rect(bound.right, region.ymin, region.xmax, region.ymax)
        )
        assert abs(left_tail - p) < 1e-6
        assert abs(right_tail - p) < 1e-6

    @settings(max_examples=40)
    @given(regions(), st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=6))
    def test_catalog_bounds_nested(self, region, levels):
        catalog = UCatalog.build(UniformPdf(region), levels)
        ordered = list(catalog)
        for (_, outer), (_, inner) in zip(ordered, ordered[1:]):
            assert outer.rect.contains_rect(inner.rect)


class TestPruningSoundness:
    @settings(max_examples=30, deadline=None)
    @given(
        regions(),
        regions(),
        specs(),
        st.floats(min_value=0.05, max_value=0.95),
    )
    def test_ciuq_pruning_never_drops_qualifying_objects(
        self, issuer_region, target_region, spec, threshold
    ):
        issuer = UncertainObject(oid=0, pdf=UniformPdf(issuer_region)).with_catalog()
        target = UncertainObject.uniform(1, target_region, with_catalog=True)
        pruner = CIUQPruner(issuer, spec, threshold)
        if pruner.decide(target).pruned:
            exact = iuq_probability_exact_uniform(issuer.pdf, target, spec)
            assert exact <= threshold + 1e-9
