"""Shared fixtures for the benchmark harness.

Every benchmark works on the TIGER-like stand-in datasets.  The dataset scale
defaults to 2 % of the paper's cardinality so the whole suite finishes in a
few minutes; set the environment variable ``REPRO_BENCH_SCALE`` (e.g. to
``1.0``) to run at full size.  Each benchmark measures the evaluation of a
single representative query (pytest-benchmark averages over many rounds),
which corresponds to one point of one series in the paper's figures.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import PointDatabase, UncertainDatabase
from repro.core.queries import RangeQuery, RangeQueryTarget
from repro.datasets.tiger import california_points, long_beach_uncertain_objects
from repro.datasets.workload import QueryWorkload
from repro.uncertainty.catalog import PAPER_CATALOG_LEVELS


def bench_scale() -> float:
    """Dataset scale factor used by all benchmarks."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


@pytest.fixture(scope="session")
def point_objects():
    """California-like point objects at benchmark scale."""
    return california_points(scale=bench_scale())


@pytest.fixture(scope="session")
def uncertain_objects():
    """Long-Beach-like uncertain objects at benchmark scale, with U-catalogs."""
    objects = long_beach_uncertain_objects(scale=bench_scale())
    return [obj.with_catalog(PAPER_CATALOG_LEVELS) for obj in objects]


@pytest.fixture(scope="session")
def point_db(point_objects) -> PointDatabase:
    """R-tree-indexed point database."""
    return PointDatabase.build(point_objects)


@pytest.fixture(scope="session")
def uncertain_db_rtree(uncertain_objects) -> UncertainDatabase:
    """Plain R-tree-indexed uncertain database."""
    return UncertainDatabase.build(
        uncertain_objects, index_kind="rtree", catalog_levels=None
    )


@pytest.fixture(scope="session")
def uncertain_db_pti(uncertain_objects) -> UncertainDatabase:
    """PTI-indexed uncertain database."""
    return UncertainDatabase.build(uncertain_objects, index_kind="pti", catalog_levels=None)


def issuer_for(u: float, *, pdf: str = "uniform", threshold: float = 0.0, seed: int = 4711):
    """A representative query issuer with the paper's workload construction."""
    workload = QueryWorkload(
        issuer_half_size=u,
        range_half_size=500.0,
        threshold=threshold,
        issuer_pdf=pdf,  # type: ignore[arg-type]
        catalog_levels=PAPER_CATALOG_LEVELS,
        seed=seed,
    )
    return next(workload.issuers(1)), workload.spec


def range_query_for(
    u: float,
    w: float = 500.0,
    *,
    target: RangeQueryTarget,
    threshold: float = 0.0,
    pdf: str = "uniform",
    seed: int = 4711,
) -> RangeQuery:
    """A representative query in the unified query-object model."""
    workload = QueryWorkload(
        issuer_half_size=u,
        range_half_size=w,
        threshold=threshold,
        issuer_pdf=pdf,  # type: ignore[arg-type]
        catalog_levels=PAPER_CATALOG_LEVELS,
        seed=seed,
    )
    issuer = next(workload.issuers(1))
    return RangeQuery(issuer=issuer, spec=workload.spec, threshold=threshold, target=target)


def workload_for(u: float, w: float, *, pdf: str = "uniform", seed: int = 4711) -> QueryWorkload:
    """A workload with explicit issuer size and range size."""
    return QueryWorkload(
        issuer_half_size=u,
        range_half_size=w,
        issuer_pdf=pdf,  # type: ignore[arg-type]
        catalog_levels=PAPER_CATALOG_LEVELS,
        seed=seed,
    )
