"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.datasets.synthetic import (
    clustered_points,
    clustered_rectangles,
    uniform_points,
    uniform_rectangles,
)

SPACE = Rect(0.0, 0.0, 1_000.0, 1_000.0)


class TestUniformPoints:
    def test_count_and_bounds(self):
        points = uniform_points(200, SPACE, seed=1)
        assert len(points) == 200
        assert all(SPACE.contains_point(p.location) for p in points)

    def test_ids_are_sequential(self):
        points = uniform_points(50, SPACE)
        assert [p.oid for p in points] == list(range(50))

    def test_deterministic_for_seed(self):
        assert uniform_points(20, SPACE, seed=5) == uniform_points(20, SPACE, seed=5)

    def test_different_seeds_differ(self):
        assert uniform_points(20, SPACE, seed=5) != uniform_points(20, SPACE, seed=6)

    def test_zero_count(self):
        assert uniform_points(0, SPACE) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            uniform_points(-1, SPACE)


class TestClusteredPoints:
    def test_count_and_bounds(self):
        points = clustered_points(500, SPACE, seed=2)
        assert len(points) == 500
        assert all(SPACE.contains_point(p.location) for p in points)

    def test_clustered_is_more_skewed_than_uniform(self):
        """Clustered data should concentrate more points in dense cells."""
        clustered = clustered_points(2_000, SPACE, seed=3, background_fraction=0.1)
        uniform = uniform_points(2_000, SPACE, seed=3)

        def max_cell_count(points):
            counts = np.zeros((10, 10), dtype=int)
            for p in points:
                ix = min(9, int(p.x / 100.0))
                iy = min(9, int(p.y / 100.0))
                counts[iy, ix] += 1
            return counts.max()

        assert max_cell_count(clustered) > 2 * max_cell_count(uniform)

    def test_invalid_background_fraction_rejected(self):
        with pytest.raises(ValueError):
            clustered_points(10, SPACE, background_fraction=1.5)


class TestRectangles:
    def test_uniform_rectangles_inside_space(self):
        objects = uniform_rectangles(300, SPACE, size_range=(5.0, 50.0), seed=4)
        assert len(objects) == 300
        for obj in objects:
            assert SPACE.contains_rect(obj.region)
            assert obj.region.area > 0.0

    def test_clustered_rectangles_inside_space(self):
        objects = clustered_rectangles(300, SPACE, size_range=(5.0, 50.0), seed=4)
        assert all(SPACE.contains_rect(obj.region) for obj in objects)

    def test_size_range_respected(self):
        objects = uniform_rectangles(200, SPACE, size_range=(10.0, 20.0), seed=1)
        for obj in objects:
            assert obj.region.width <= 20.0 + 1e-9
            assert obj.region.height <= 20.0 + 1e-9

    def test_invalid_size_range_rejected(self):
        with pytest.raises(ValueError):
            uniform_rectangles(10, SPACE, size_range=(50.0, 10.0))
        with pytest.raises(ValueError):
            uniform_rectangles(10, SPACE, size_range=(0.0, 10.0))

    def test_objects_have_uniform_pdfs_without_catalogs(self):
        objects = uniform_rectangles(10, SPACE)
        assert all(obj.catalog is None for obj in objects)

    def test_deterministic_for_seed(self):
        a = clustered_rectangles(50, SPACE, seed=9)
        b = clustered_rectangles(50, SPACE, seed=9)
        assert [o.region for o in a] == [o.region for o in b]
