"""RPL004 — raises in ``repro/`` use the typed error hierarchy.

PR 8 left the tree raising a mix of bare ``ValueError``/``KeyError``/
``RuntimeError`` and typed ``ReproError`` subclasses.  Bare builtins give
the serving layer nothing to dispatch on — every one crosses the wire as
the anonymous base ``error`` code instead of a structured, client-catchable
class.  Every raise in library code must therefore use a type from
:mod:`repro.errors` (each of which *keeps* the historical builtin as a
second base, so existing ``except ValueError`` call sites still work).

Allowed: bare re-raise (``raise``), ``NotImplementedError`` (abstract
surface), ``StopIteration``/``StopAsyncIteration`` (protocol), assertion
machinery, OS-level errors (``OSError`` and subclasses, ``TimeoutError``)
which genuinely originate outside the library's domain model, and
``AttributeError`` raised from ``__getattr__``/``__getattribute__`` — the
attribute protocol *requires* that exact type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register

#: (exception, enclosing function) pairs the language protocol mandates.
_PROTOCOL_RAISES = {
    "AttributeError": {"__getattr__", "__getattribute__", "__delattr__"},
    "KeyError": {"__missing__"},
    "IndexError": {"__getitem__"},
}

#: Builtin exception names whose direct raise marks an untyped domain error.
_FORBIDDEN = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "RuntimeError",
    "AttributeError",
    "ArithmeticError",
    "ZeroDivisionError",
    "OverflowError",
}

#: The replacement each builtin maps to, for the diagnostic message.
_SUGGESTION = {
    "ValueError": "a ValueError-based ReproError (InvalidQueryError, "
    "ConfigurationError, DatasetError, …)",
    "TypeError": "InvalidArgumentError",
    "KeyError": "MissingItemError",
    "IndexError": "MissingItemError",
    "LookupError": "MissingItemError",
    "RuntimeError": "EngineStateError (or BackpressureError)",
}


@register
class TypedRaises(Rule):
    rule_id = "RPL004"
    severity = "error"
    description = (
        "library code must raise repro.errors types, never bare builtin "
        "exceptions (they cross the wire untyped)"
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_package("repro/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        # Map each raise to its innermost enclosing function name, to honour
        # the attribute/item-protocol exemptions.
        enclosing: dict[int, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if isinstance(child, ast.Raise):
                        enclosing[id(child)] = node.name
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if not (isinstance(target, ast.Name) and target.id in _FORBIDDEN):
                continue
            protocol_funcs = _PROTOCOL_RAISES.get(target.id, set())
            if enclosing.get(id(node)) in protocol_funcs:
                continue
            hint = _SUGGESTION.get(target.id, "a matching repro.errors class")
            yield (
                node.lineno,
                f"raise of bare {target.id}: use {hint} so the failure "
                "carries a wire_code the serving layer can dispatch on",
            )
