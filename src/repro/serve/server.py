"""Asyncio serving front-end with a micro-batching dispatch loop.

A :class:`QueryServer` owns one :class:`~repro.core.session.Session` and
converts the *batch* amortisation of ``Session.evaluate_many`` into
multi-client throughput: concurrently arriving ``submit_query`` calls park
on per-request futures in a queue, and a single dispatch loop drains them in
*waves* — it takes the first pending request, keeps collecting for up to the
coalescing ``window`` (or until ``max_wave`` requests are in hand), then
evaluates every query of the wave through **one** ``evaluate_many`` call on
a worker thread, so the event loop (and the TCP transport) stays responsive
while the engine works.

Updates ride the same queue: inside a wave they split the query runs exactly
where they were submitted, so each :class:`~repro.core.updates.UpdateBatch`
is applied at a wave boundary in submission order — queries submitted before
it see the old data, queries after it the new, and subscription deltas and
cache invalidation stay consistent with single-client semantics.

Two properties make coalesced answers **bitwise identical** to calling
``Session.evaluate`` directly on the same session:

* the server forces the ``query_keyed`` draw plan (when the session is on
  the default ``stream`` plan), making a query's Monte-Carlo draws a pure
  function of its content rather than its position in whatever wave it
  landed in, and
* ``evaluate_many`` runs the same staged pipeline per query as ``evaluate``.

Backpressure is applied at submission: once ``max_pending`` requests are
queued, further submissions fail *immediately* with
:class:`~repro.core.errors.BackpressureError` — nothing is enqueued, so a
client can back off and retry without consuming server memory.

The JSON-lines TCP transport (:meth:`QueryServer.serve`) speaks the
:mod:`repro.serve.schemas` envelopes: one request per line, one response
line per request (matched by ``id``, possibly out of order — responses are
written as their waves complete).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

from repro.core.errors import ConfigurationError, SchemaError
from repro.core.queries import Evaluation, Query, query_from_dict
from repro.core.session import Session
from repro.core.updates import UpdateBatch
from repro.serve.framing import MAX_LINE_BYTES, encode_json_line, read_line
from repro.serve.schemas import decode_request, error_response, ok_response

#: Default coalescing window, seconds.  Long enough to collect a burst of
#: concurrent submissions, short enough to be invisible next to a query.
DEFAULT_WINDOW = 0.002

#: Default request-queue high-water mark.
DEFAULT_MAX_PENDING = 1024


@dataclass
class _Request:
    """One parked submission: its kind, operand and completion future."""

    kind: str  # "query" | "update"
    payload: Any
    future: asyncio.Future


class QueryServer:
    """One session, many clients: micro-batched async request dispatch.

    ``window`` is the coalescing window in seconds (``0`` disables batching
    — every request dispatches alone, the baseline the serving benchmark
    compares against); ``max_pending`` the queue's high-water mark past
    which submissions are rejected; ``max_wave`` caps how many requests one
    wave may collect (default: no cap below ``max_pending``) — a full wave
    dispatches immediately without waiting out the window.
    """

    def __init__(
        self,
        session: Session,
        *,
        window: float = DEFAULT_WINDOW,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_wave: int | None = None,
    ) -> None:
        if window < 0:
            raise ConfigurationError(f"window must be >= 0 seconds, got {window}")
        if max_pending < 1:
            raise ConfigurationError(f"max_pending must be >= 1, got {max_pending}")
        if max_wave is not None and max_wave < 1:
            raise ConfigurationError(f"max_wave must be >= 1, got {max_wave}")
        if session.engine.config.draw_plan == "stream":
            # Position-independent draws: a query answers identically whether
            # it is evaluated alone or inside any coalesced wave.
            session = session.with_config(draw_plan="query_keyed")
        self._session = session
        self._window = float(window)
        self._max_pending = int(max_pending)
        self._max_wave = int(max_wave) if max_wave is not None else int(max_pending)
        self._queue: asyncio.Queue[_Request] = asyncio.Queue()
        self._dispatch_task: asyncio.Task | None = None
        self._accepted = 0
        self._rejected = 0
        self._waves = 0
        self._wave_items = 0
        self._largest_wave = 0
        self._queries_served = 0
        self._update_ops_applied = 0

    @property
    def session(self) -> Session:
        """The served session (with the server's draw-plan override applied)."""
        return self._session

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the dispatch loop on the running event loop (idempotent)."""
        if self._dispatch_task is None or self._dispatch_task.done():
            self._dispatch_task = asyncio.get_running_loop().create_task(
                self._dispatch(), name="repro-serve-dispatch"
            )

    async def stop(self) -> None:
        """Stop the dispatch loop; already-queued requests are abandoned."""
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
            self._dispatch_task = None
        while not self._queue.empty():
            request = self._queue.get_nowait()
            if not request.future.done():
                request.future.cancel()

    async def __aenter__(self) -> "QueryServer":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Async API
    # ------------------------------------------------------------------ #
    def _submit(self, kind: str, payload: Any) -> asyncio.Future:
        from repro.core.errors import BackpressureError

        if self._queue.qsize() >= self._max_pending:
            self._rejected += 1
            raise BackpressureError(
                f"request queue is at its high-water mark "
                f"({self._max_pending} pending); back off and retry"
            )
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(_Request(kind=kind, payload=payload, future=future))
        self._accepted += 1
        return future

    async def submit_query(self, query: Query) -> Evaluation:
        """Queue one query; resolves with its :class:`Evaluation`."""
        return await self._submit("query", query)

    async def submit_update(self, batch: UpdateBatch) -> int:
        """Queue one update batch; resolves with the number of ops applied."""
        return await self._submit("update", batch)

    async def stats(self) -> dict:
        """The session's :meth:`~repro.core.session.Session.describe` snapshot
        plus the front-end's serving counters."""
        snapshot = self._session.describe()
        snapshot["serving"] = {
            "window_seconds": self._window,
            "max_pending": self._max_pending,
            "max_wave": self._max_wave,
            "pending": self._queue.qsize(),
            "accepted": self._accepted,
            "rejected": self._rejected,
            "waves": self._waves,
            "wave_items": self._wave_items,
            "largest_wave": self._largest_wave,
            "queries_served": self._queries_served,
            "update_ops_applied": self._update_ops_applied,
        }
        return snapshot

    # ------------------------------------------------------------------ #
    # Dispatch loop
    # ------------------------------------------------------------------ #
    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            wave = [await self._queue.get()]
            if self._window > 0.0:
                deadline = loop.time() + self._window
                while len(wave) < self._max_wave:
                    remaining = deadline - loop.time()
                    if remaining <= 0.0:
                        break
                    try:
                        wave.append(await asyncio.wait_for(self._queue.get(), remaining))
                    except TimeoutError:
                        break
            await self._run_wave(wave)

    async def _run_wave(self, wave: list[_Request]) -> None:
        # Consecutive queries form one evaluate_many run; an update splits
        # the runs, keeping the wave's submission order = application order.
        groups: list[tuple[str, list[_Request]]] = []
        for request in wave:
            if groups and groups[-1][0] == "query" and request.kind == "query":
                groups[-1][1].append(request)
            else:
                groups.append((request.kind, [request]))
        outcomes = await asyncio.get_running_loop().run_in_executor(
            None, self._execute_groups, groups
        )
        self._waves += 1
        self._wave_items += len(wave)
        self._largest_wave = max(self._largest_wave, len(wave))
        for request, ok, value in outcomes:
            if request.future.cancelled():
                continue
            if ok:
                request.future.set_result(value)
            else:
                request.future.set_exception(value)

    def _execute_groups(
        self, groups: list[tuple[str, list[_Request]]]
    ) -> list[tuple[_Request, bool, Any]]:
        """Run one wave's groups on the worker thread; never raises."""
        outcomes: list[tuple[_Request, bool, Any]] = []
        for kind, requests in groups:
            if kind == "query":
                try:
                    evaluations = self._session.evaluate_many(
                        [request.payload for request in requests]
                    )
                except Exception as error:  # engine failure fails the run
                    outcomes.extend((request, False, error) for request in requests)
                else:
                    self._queries_served += len(requests)
                    outcomes.extend(
                        (request, True, evaluation)
                        for request, evaluation in zip(requests, evaluations)
                    )
            else:
                # Updates apply individually: one bad batch must not block
                # or roll back its neighbours.
                for request in requests:
                    try:
                        self._session.apply_updates(request.payload)
                    except Exception as error:
                        outcomes.append((request, False, error))
                    else:
                        self._update_ops_applied += len(request.payload)
                        outcomes.append((request, True, len(request.payload)))
        return outcomes

    # ------------------------------------------------------------------ #
    # JSON-lines TCP transport
    # ------------------------------------------------------------------ #
    async def handle_request(self, payload: Any) -> dict:
        """Decode and execute one request envelope; always returns a response."""
        rid = payload.get("id") if isinstance(payload, dict) else None
        try:
            op, rid, body = decode_request(payload)
            if op == "query":
                evaluation = await self.submit_query(query_from_dict(body))
                result: Any = evaluation.to_dict()
            elif op == "update":
                result = {"applied": await self.submit_update(UpdateBatch.from_dict(body))}
            else:
                result = await self.stats()
            return ok_response(rid, result)
        except Exception as error:
            return error_response(rid, error)

    async def serve(self, host: str = "127.0.0.1", port: int = 8707) -> asyncio.Server:
        """Start the dispatch loop and listen for JSON-lines connections."""
        self.start()
        return await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_LINE_BYTES
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await read_line(reader)
                except SchemaError as error:
                    # An over-long line leaves the stream unframeable: tell
                    # the client why, then hang up.
                    await self._write_response(
                        error_response(None, error), writer, write_lock
                    )
                    break
                if line is None:
                    break
                if not line.strip():
                    continue
                # One task per request so a whole connection's pipeline can
                # land in the same wave instead of serializing on readline.
                task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            response = error_response(None, SchemaError(f"request is not JSON: {error}"))
        else:
            response = await self.handle_request(payload)
        await self._write_response(response, writer, write_lock)

    @staticmethod
    async def _write_response(
        response: dict, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        data = encode_json_line(response)
        async with write_lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; its wave results stand
