"""Unit tests for :mod:`repro.geometry.circle`."""

import math

import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestCircleBasics:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(Point(0.0, 0.0), -1.0)

    def test_area(self):
        assert Circle(Point(0.0, 0.0), 2.0).area == pytest.approx(4.0 * math.pi)

    def test_bounding_rect(self):
        circle = Circle(Point(1.0, 2.0), 3.0)
        assert circle.bounding_rect() == Rect(-2.0, -1.0, 4.0, 5.0)

    def test_contains_point(self):
        circle = Circle(Point(0.0, 0.0), 1.0)
        assert circle.contains_point(Point(0.5, 0.5))
        assert circle.contains_point(Point(1.0, 0.0))
        assert not circle.contains_point(Point(1.0, 1.0))


class TestCircleRectRelations:
    def test_overlaps_rect(self):
        circle = Circle(Point(0.0, 0.0), 1.0)
        assert circle.overlaps_rect(Rect(0.5, 0.5, 2.0, 2.0))
        assert not circle.overlaps_rect(Rect(2.0, 2.0, 3.0, 3.0))

    def test_contains_rect(self):
        circle = Circle(Point(0.0, 0.0), 2.0)
        assert circle.contains_rect(Rect(-1.0, -1.0, 1.0, 1.0))
        assert not circle.contains_rect(Rect(-2.0, -2.0, 2.0, 2.0))

    def test_intersection_area_full_containment(self):
        circle = Circle(Point(0.0, 0.0), 1.0)
        rect = Rect(-2.0, -2.0, 2.0, 2.0)
        area = circle.intersection_area_with_rect(rect, resolution=512)
        assert area == pytest.approx(circle.area, rel=1e-3)

    def test_intersection_area_disjoint_is_zero(self):
        circle = Circle(Point(0.0, 0.0), 1.0)
        assert circle.intersection_area_with_rect(Rect(5.0, 5.0, 6.0, 6.0)) == 0.0

    def test_intersection_area_half_plane(self):
        # A rectangle covering exactly the right half of the disc.
        circle = Circle(Point(0.0, 0.0), 1.0)
        rect = Rect(0.0, -2.0, 2.0, 2.0)
        area = circle.intersection_area_with_rect(rect, resolution=1024)
        assert area == pytest.approx(circle.area / 2.0, rel=1e-2)

    def test_intersection_area_never_exceeds_min_of_areas(self):
        circle = Circle(Point(3.0, 3.0), 1.5)
        rect = Rect(2.0, 2.0, 4.5, 3.5)
        area = circle.intersection_area_with_rect(rect, resolution=256)
        assert area <= min(circle.area, rect.area) + 1e-9

    def test_zero_radius_has_zero_intersection(self):
        circle = Circle(Point(0.0, 0.0), 0.0)
        assert circle.intersection_area_with_rect(Rect(-1.0, -1.0, 1.0, 1.0)) == 0.0
