"""Experiment harness reproducing the paper's evaluation section.

Each result figure of the paper (Figures 8–13) has a dedicated function in
:mod:`repro.experiments.figures` that regenerates its data series — same
workload construction, same parameter sweep, same competing methods.  The
functions return :class:`~repro.experiments.runner.FigureResult` objects that
can be printed as text tables, exported to CSV and checked against the
qualitative shapes reported in the paper (see EXPERIMENTS.md).
"""

from repro.experiments.config import PAPER_DEFAULTS, ExperimentConfig, PaperDefaults
from repro.experiments.runner import (
    FigureResult,
    SeriesPoint,
    run_engine_batch,
    run_query_batch,
    run_session_batch,
)
from repro.experiments.figures import (
    figure_08,
    figure_09,
    figure_10,
    figure_11,
    figure_12,
    figure_13,
    ALL_FIGURES,
)
from repro.experiments.reporting import format_figure, figure_to_csv, check_shape
from repro.experiments.sensitivity import (
    monte_carlo_sample_sweep,
    catalog_size_sweep,
    index_comparison,
    pruning_strategy_ablation,
)

__all__ = [
    "PAPER_DEFAULTS",
    "PaperDefaults",
    "ExperimentConfig",
    "FigureResult",
    "SeriesPoint",
    "run_query_batch",
    "run_engine_batch",
    "run_session_batch",
    "figure_08",
    "figure_09",
    "figure_10",
    "figure_11",
    "figure_12",
    "figure_13",
    "ALL_FIGURES",
    "format_figure",
    "figure_to_csv",
    "check_shape",
    "monte_carlo_sample_sweep",
    "catalog_size_sweep",
    "index_comparison",
    "pruning_strategy_ablation",
]
