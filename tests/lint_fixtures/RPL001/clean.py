# lint-fixture-path: repro/core/example.py
"""Epoch-guarded memo and a module-level (immutable-argument) lru_cache."""

from functools import lru_cache


class Database:
    def columnar(self):
        if self._columnar is None or self._columnar_epoch != self._epoch:
            self._columnar = build_columnar(self.objects)
            self._columnar_epoch = self._epoch
        return self._columnar

    def pool(self):
        # Lazy *resource* init (no derived-data name): not a memo of data.
        if self._pool is None:
            self._pool = make_pool()
        return self._pool


@lru_cache(maxsize=16)
def issuer_grid(pdf, samples):
    return discretize(pdf, samples)
