"""Unit tests for query and answer types."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.queries import ImpreciseRangeQuery, QueryAnswer, QueryResult, RangeQuerySpec
from repro.uncertainty.region import UncertainObject


class TestRangeQuerySpec:
    def test_square(self):
        spec = RangeQuerySpec.square(500.0)
        assert spec.half_width == 500.0
        assert spec.half_height == 500.0

    def test_rejects_negative_extents(self):
        with pytest.raises(ValueError):
            RangeQuerySpec(-1.0, 1.0)

    def test_region_at(self):
        spec = RangeQuerySpec(10.0, 20.0)
        assert spec.region_at(Point(100.0, 200.0)) == Rect(90.0, 180.0, 110.0, 220.0)

    def test_area(self):
        assert RangeQuerySpec(10.0, 20.0).area == 800.0


class TestImpreciseRangeQuery:
    def _issuer(self) -> UncertainObject:
        return UncertainObject.uniform(0, Rect(0.0, 0.0, 100.0, 100.0))

    def test_defaults_to_unconstrained(self):
        query = ImpreciseRangeQuery(issuer=self._issuer(), spec=RangeQuerySpec.square(50.0))
        assert query.threshold == 0.0
        assert not query.is_constrained

    def test_constrained_flag(self):
        query = ImpreciseRangeQuery(
            issuer=self._issuer(), spec=RangeQuerySpec.square(50.0), threshold=0.3
        )
        assert query.is_constrained

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            ImpreciseRangeQuery(
                issuer=self._issuer(), spec=RangeQuerySpec.square(50.0), threshold=1.5
            )

    def test_issuer_region_and_range_at(self):
        query = ImpreciseRangeQuery(issuer=self._issuer(), spec=RangeQuerySpec.square(10.0))
        assert query.issuer_region == Rect(0.0, 0.0, 100.0, 100.0)
        assert query.range_at(Point(50.0, 50.0)) == Rect(40.0, 40.0, 60.0, 60.0)


class TestQueryAnswer:
    def test_valid_answer(self):
        answer = QueryAnswer(oid=1, probability=0.5)
        assert answer.probability == 0.5

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            QueryAnswer(oid=1, probability=1.5)


class TestQueryResult:
    def test_add_and_len(self):
        result = QueryResult()
        result.add(1, 0.5)
        result.add(2, 0.9)
        assert len(result) == 2

    def test_sort_orders_by_probability_descending(self):
        result = QueryResult()
        result.add(1, 0.2)
        result.add(2, 0.9)
        result.add(3, 0.5)
        result.sort()
        assert [a.oid for a in result] == [2, 3, 1]

    def test_sort_breaks_ties_by_oid(self):
        result = QueryResult()
        result.add(5, 0.5)
        result.add(2, 0.5)
        result.sort()
        assert [a.oid for a in result] == [2, 5]

    def test_probabilities_mapping(self):
        result = QueryResult()
        result.add(1, 0.25)
        assert result.probabilities() == {1: 0.25}

    def test_oids(self):
        result = QueryResult()
        result.add(1, 0.25)
        result.add(7, 0.75)
        assert result.oids() == {1, 7}

    def test_above_threshold(self):
        result = QueryResult()
        result.add(1, 0.25)
        result.add(2, 0.75)
        filtered = result.above_threshold(0.5)
        assert filtered.oids() == {2}
        # Original is untouched.
        assert len(result) == 2
