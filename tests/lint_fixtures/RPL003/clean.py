# lint-fixture-path: repro/core/example.py
"""Every handle is released on the spot or handed to an owner."""

from multiprocessing.shared_memory import SharedMemory


def publish(payload):
    block = SharedMemory(create=True, size=len(payload))
    try:
        block.buf[: len(payload)] = payload
        return block.name
    finally:
        block.close()


def open_for_store(store, name):
    block = SharedMemory(name=name)
    store.adopt(block)


def read_once(name):
    block = SharedMemory(name=name)
    data = bytes(block.buf)
    block.close()
    block.unlink()
    return data
