"""Unit tests for U-catalogs (Section 5.1 of the paper)."""

import pytest

from repro.geometry.rect import Rect
from repro.uncertainty.catalog import (
    DEFAULT_CATALOG_LEVELS,
    PAPER_CATALOG_LEVELS,
    UCatalog,
)
from repro.uncertainty.pbound import compute_pbound
from repro.uncertainty.pdf import UniformPdf

REGION = Rect(0.0, 0.0, 100.0, 100.0)


@pytest.fixture()
def catalog() -> UCatalog:
    return UCatalog.build(UniformPdf(REGION), DEFAULT_CATALOG_LEVELS)


class TestConstruction:
    def test_default_levels(self, catalog):
        assert catalog.levels == DEFAULT_CATALOG_LEVELS
        assert len(catalog) == len(DEFAULT_CATALOG_LEVELS)

    def test_paper_levels_has_eleven_entries(self):
        assert len(PAPER_CATALOG_LEVELS) == 11
        assert PAPER_CATALOG_LEVELS[0] == 0.0
        assert PAPER_CATALOG_LEVELS[-1] == 1.0

    def test_build_sorts_and_deduplicates_levels(self):
        catalog = UCatalog.build(UniformPdf(REGION), [0.3, 0.1, 0.3, 0.0])
        assert catalog.levels == (0.0, 0.1, 0.3)

    def test_mismatched_lengths_rejected(self):
        bound = compute_pbound(UniformPdf(REGION), 0.1)
        with pytest.raises(ValueError):
            UCatalog(levels=(0.0, 0.1), bounds=(bound,))

    def test_unsorted_levels_rejected(self):
        bounds = tuple(compute_pbound(UniformPdf(REGION), p) for p in (0.1, 0.0))
        with pytest.raises(ValueError):
            UCatalog(levels=(0.1, 0.0), bounds=bounds)

    def test_out_of_range_level_rejected(self):
        bound = compute_pbound(UniformPdf(REGION), 0.1)
        with pytest.raises(ValueError):
            UCatalog(levels=(1.5,), bounds=(bound,))

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            UCatalog(levels=(), bounds=())


class TestLookup:
    def test_bound_at_exact_level(self, catalog):
        bound = catalog.bound_at(0.2)
        assert bound.left == pytest.approx(20.0)

    def test_bound_at_missing_level_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.bound_at(0.15)

    def test_largest_level_at_most(self, catalog):
        assert catalog.largest_level_at_most(0.25) == 0.2
        assert catalog.largest_level_at_most(0.5) == 0.5
        assert catalog.largest_level_at_most(0.95) == 0.5
        assert catalog.largest_level_at_most(0.0) == 0.0

    def test_largest_level_at_most_below_minimum(self):
        catalog = UCatalog.build(UniformPdf(REGION), [0.1, 0.2])
        assert catalog.largest_level_at_most(0.05) is None

    def test_smallest_level_at_least(self, catalog):
        assert catalog.smallest_level_at_least(0.25) == 0.3
        assert catalog.smallest_level_at_least(0.0) == 0.0
        assert catalog.smallest_level_at_least(0.75) is None

    def test_bound_for_threshold_rounds_down(self, catalog):
        bound = catalog.bound_for_threshold(0.37)
        assert bound is not None
        assert bound.p == 0.3

    def test_tightest_bound_at_least_rounds_up(self, catalog):
        bound = catalog.tightest_bound_at_least(0.37)
        assert bound is not None
        assert bound.p == 0.4

    def test_iteration_yields_pairs(self, catalog):
        pairs = list(catalog)
        assert [level for level, _ in pairs] == list(catalog.levels)


class TestConservativeRounding:
    def test_rounded_down_bound_is_looser(self, catalog):
        """The bound at the rounded-down level must enclose the exact bound."""
        pdf = UniformPdf(REGION)
        threshold = 0.37
        rounded = catalog.bound_for_threshold(threshold)
        exact = compute_pbound(pdf, threshold)
        assert rounded is not None
        assert rounded.rect.contains_rect(exact.rect)
