"""Unit tests for the truncated Gaussian uncertainty pdf."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.uncertainty.pdf import TruncatedGaussianPdf
from repro.uncertainty.sampling import grid_rect_probability, monte_carlo_rect_probability

REGION = Rect(0.0, 0.0, 600.0, 600.0)


@pytest.fixture()
def pdf() -> TruncatedGaussianPdf:
    return TruncatedGaussianPdf(REGION)


class TestConstruction:
    def test_default_sigma_is_one_sixth_of_extent(self, pdf):
        assert pdf.sigma == (pytest.approx(100.0), pytest.approx(100.0))

    def test_explicit_sigma(self):
        pdf = TruncatedGaussianPdf(REGION, sigma_x=50.0, sigma_y=25.0)
        assert pdf.sigma == (50.0, 25.0)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ValueError):
            TruncatedGaussianPdf(REGION, sigma_x=0.0)

    def test_rejects_degenerate_region(self):
        with pytest.raises(ValueError):
            TruncatedGaussianPdf(Rect(0.0, 0.0, 0.0, 10.0))

    def test_mean_is_region_center(self, pdf):
        assert pdf.mean().as_tuple() == (300.0, 300.0)


class TestRectProbability:
    def test_full_region_gives_one(self, pdf):
        assert pdf.probability_in_rect(REGION) == pytest.approx(1.0)

    def test_disjoint_gives_zero(self, pdf):
        assert pdf.probability_in_rect(Rect(1000.0, 1000.0, 1100.0, 1100.0)) == 0.0

    def test_half_region_is_half_by_symmetry(self, pdf):
        left = Rect(0.0, 0.0, 300.0, 600.0)
        assert pdf.probability_in_rect(left) == pytest.approx(0.5, abs=1e-9)

    def test_center_concentration(self, pdf):
        # A central box of half the side length holds far more than the
        # uniform share (0.25) of the mass because the Gaussian concentrates.
        central = Rect(150.0, 150.0, 450.0, 450.0)
        assert pdf.probability_in_rect(central) > 0.55

    def test_matches_monte_carlo(self, pdf, rng):
        rect = Rect(100.0, 200.0, 400.0, 500.0)
        exact = pdf.probability_in_rect(rect)
        estimate = monte_carlo_rect_probability(pdf, rect, 30_000, rng)
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_matches_grid_integration(self, pdf):
        rect = Rect(50.0, 50.0, 350.0, 250.0)
        exact = pdf.probability_in_rect(rect)
        numeric = grid_rect_probability(pdf, rect, resolution=96)
        assert numeric == pytest.approx(exact, abs=0.02)


class TestMarginals:
    def test_cdf_monotone(self, pdf):
        xs = np.linspace(0.0, 600.0, 25)
        values = [pdf.marginal_cdf_x(float(x)) for x in xs]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_cdf_endpoints(self, pdf):
        assert pdf.marginal_cdf_x(0.0) == 0.0
        assert pdf.marginal_cdf_x(600.0) == 1.0

    def test_median_is_center(self, pdf):
        assert pdf.marginal_quantile_x(0.5) == pytest.approx(300.0, abs=1e-6)
        assert pdf.marginal_quantile_y(0.5) == pytest.approx(300.0, abs=1e-6)

    def test_quantile_inverts_cdf(self, pdf):
        for p in (0.05, 0.25, 0.5, 0.75, 0.95):
            assert pdf.marginal_cdf_x(pdf.marginal_quantile_x(p)) == pytest.approx(p, abs=1e-9)

    def test_quantiles_tighter_than_uniform(self, pdf):
        # Gaussian mass concentrates at the centre, so the 0.1-quantile lies
        # farther from the boundary than the uniform one would (60.0).
        assert pdf.marginal_quantile_x(0.1) > 60.0


class TestSampling:
    def test_samples_inside_region(self, pdf, rng):
        draws = pdf.sample(rng, 5_000)
        assert np.all(draws[:, 0] >= REGION.xmin) and np.all(draws[:, 0] <= REGION.xmax)
        assert np.all(draws[:, 1] >= REGION.ymin) and np.all(draws[:, 1] <= REGION.ymax)

    def test_sample_mean_near_center(self, pdf, rng):
        draws = pdf.sample(rng, 20_000)
        assert float(draws[:, 0].mean()) == pytest.approx(300.0, abs=5.0)
        assert float(draws[:, 1].mean()) == pytest.approx(300.0, abs=5.0)

    def test_sample_std_matches_sigma(self, pdf, rng):
        draws = pdf.sample(rng, 20_000)
        # Truncation at ±3σ slightly shrinks the standard deviation.
        assert float(draws[:, 0].std()) == pytest.approx(100.0, rel=0.1)
