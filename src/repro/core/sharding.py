"""Spatial sharding of point / uncertain databases.

A :class:`ShardedDatabase` partitions an object collection into ``k``
spatial shards (grid cells or recursive-median splits, see
:mod:`repro.datasets.partition`), builds one index from the registry per
non-empty shard, and answers the *shard planner* questions of the parallel
executor:

* :meth:`ShardedDatabase.route_window` — which shards can a range query's
  expanded window touch?  A shard is consulted iff the window overlaps the
  shard's *cover* rectangle (the union of its members' MBRs), which is exact
  for point members and conservative-and-complete for uncertain members
  because an object's whole region is contained in its shard's cover.
* :meth:`ShardedDatabase.route_nearest` — which shards can hold a
  nearest-neighbour winner for an issuer region?  Every shard keeps an
  *anchor* (the member location closest to the cover centre); the smallest
  max-distance from the issuer region to any anchor upper-bounds the best
  possible distance, and shards whose cover lies entirely beyond that bound
  are skipped.

Shards own ordinary :class:`~repro.core.engine.PointDatabase` /
:class:`~repro.core.engine.UncertainDatabase` instances, so every engine
feature — columnar snapshots, PTI node-level pruning, pruner caching — works
unchanged per shard.  Partitioning preserves input order inside each shard,
so ``k = 1`` reproduces the unsharded database exactly.

Sharded databases are *live*: :meth:`ShardedDatabase.insert`,
:meth:`ShardedDatabase.delete` and :meth:`ShardedDatabase.move` route each
mutation to the owning shard (inserts go to the shard whose cover is nearest
the new object's MBR centre) and maintain only that shard — its index, its
columnar-snapshot epoch, its cover rectangle and its nearest-neighbour
anchor.  When an insert pushes a shard past the configurable
``hot_threshold``, that one shard is re-split in place (a median cut into
two) without touching its siblings.  The per-shard epochs double as the
staleness signal of the parallel executor's shared-memory snapshot store
(:mod:`repro.core.shm`): a mutation bumps only the owning shard's epoch, so
only that shard's snapshot block is republished for the worker pool.
"""

from __future__ import annotations
from repro.core.errors import ConfigurationError, InvalidUpdateError, MissingItemError

from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from repro.core.database import PointDatabase, UncertainDatabase, new_database_uid
from repro.core.pipeline import QueryPipeline
from repro.core.queries import Evaluation, Query
from repro.core.updates import MutationObservable, UpdateEvent, UpdateOp
from repro.datasets.partition import (
    PartitionMethod,
    mbr_centers,
    median_assignments,
    partition_assignments,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import extract_mbr
from repro.index.registry import get_index_backend
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS
from repro.uncertainty.region import PointObject, UncertainObject

ShardKind = Literal["points", "uncertain"]

#: Per-shard pipeline instances retained per configuration (oldest evicted
#: beyond this), so a handful of engines sharing one sharded database keep
#: their pipelines warm while a stream of short-lived engines stays bounded.
_PIPELINES_PER_SHARD = 4


@dataclass
class Shard:
    """One spatial partition: its database (if non-empty) plus routing metadata."""

    sid: int
    database: PointDatabase | UncertainDatabase | None
    #: Covers every member's MBR; ``Rect.empty()`` for an empty shard.  Kept
    #: *conservative* under live mutation: inserts grow it exactly, deletes
    #: leave it untouched (a looser cover stays complete for routing), and a
    #: re-split re-tightens it.
    cover: Rect
    #: A representative member location used by nearest-neighbour routing
    #: (``None`` for empty or uncertain shards).
    anchor: Point | None = None
    #: Oid of the member the anchor points at, so mutations can tell when
    #: the anchor itself moved or left and must be re-chosen.
    anchor_oid: int | None = None

    @property
    def is_empty(self) -> bool:
        """True when the partition received no objects."""
        return self.database is None

    def __len__(self) -> int:
        return 0 if self.database is None else len(self.database)


@dataclass
class ShardedDatabase(MutationObservable):
    """A database partitioned into ``k`` spatial shards, each independently indexed."""

    kind: ShardKind
    shards: list[Shard]
    index_kind: str
    partitioner: PartitionMethod
    objects: list = field(repr=False)
    #: Levels the construction attached U-catalogs at (uncertain shards only);
    #: mutations attach catalogs at the same levels.
    catalog_levels: tuple[float, ...] | None = None
    #: Re-split a shard in place when an insert pushes it past this many
    #: members (``None`` disables hot-shard re-splitting).
    hot_threshold: int | None = None
    #: Structure version: bumped whenever a shard's *database instance* is
    #: replaced wholesale (re-splits, emptied shards, repopulated empty
    #: shards).  Per-shard epoch counters restart at zero on such a
    #: replacement, so cache keys embedding ``(sid, epoch)`` pairs must also
    #: embed this version to stay collision-free across replacements.
    version: int = field(default=0, init=False, compare=False)
    #: Process-unique identity (never recycled); cache keys embed it so two
    #: sharded databases sharing a configuration can never alias.
    uid: int = field(default_factory=new_database_uid, init=False, repr=False, compare=False)
    #: Lazy oid → shard-id map maintained across mutations.
    _oid_shard: dict[int, int] | None = field(default=None, init=False, repr=False, compare=False)
    #: Lazy oid → position map into the global ``objects`` list.
    _oid_global: dict[int, int] | None = field(default=None, init=False, repr=False, compare=False)
    #: Per-shard :class:`~repro.core.pipeline.QueryPipeline` instances,
    #: keyed by ``(shard id, configuration identity)`` so several engines
    #: sharing this database (e.g. a session and its ``cached()``
    #: descendant) keep their pipelines — and the samplers those pipelines
    #: cache — warm side by side; an entry is rebuilt when the shard's
    #: database instance was replaced wholesale.
    _pipelines: dict[tuple[int, int], tuple] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.hot_threshold is not None and self.hot_threshold < 2:
            raise ConfigurationError(
                f"hot_threshold must be >= 2 (a re-split needs two members), "
                f"got {self.hot_threshold}"
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _plan(
        objects: list, k: int, partitioner: PartitionMethod, bounds: Rect | None
    ) -> list[list]:
        if k < 1:
            raise ConfigurationError(f"shard count must be >= 1, got {k}")
        if not objects:
            raise ConfigurationError("cannot shard an empty collection")
        if bounds is None and partitioner == "grid":
            bounds = Rect.bounding([extract_mbr(obj) for obj in objects])
        assignments = partition_assignments(
            mbr_centers(objects), k, method=partitioner, bounds=bounds
        )
        parts: list[list] = [[] for _ in range(k)]
        for obj, sid in zip(objects, assignments):
            parts[int(sid)].append(obj)
        return parts

    @staticmethod
    def _check_shardable(index_kind: str) -> None:
        backend = get_index_backend(index_kind)
        if not backend.capabilities.supports_shard_build:
            raise ConfigurationError(
                f"index kind {index_kind!r} cannot be built per shard "
                "(its registry capabilities declare supports_shard_build=False)"
            )

    @staticmethod
    def _cover(members: list) -> Rect:
        return Rect.bounding([extract_mbr(obj) for obj in members])

    @staticmethod
    def _anchor(members: list[PointObject], cover: Rect) -> PointObject:
        center = cover.center
        return min(members, key=lambda obj: obj.location.distance_to(center))

    @classmethod
    def build_points(
        cls,
        objects: Iterable[PointObject],
        k: int,
        *,
        partitioner: PartitionMethod = "grid",
        index_kind: str = "rtree",
        bounds: Rect | None = None,
        hot_threshold: int | None = None,
        **index_kwargs,
    ) -> "ShardedDatabase":
        """Partition point objects into ``k`` shards and index each one.

        ``bounds`` fixes the grid partitioner's data space (default: the
        collection's bounding rectangle).  Empty partitions are kept as
        index-less shards so shard ids stay aligned with the partitioner's
        cells.  ``hot_threshold`` arms in-place re-splitting of shards that
        grow past that many members under live inserts.
        """
        materialised = list(objects)
        cls._check_shardable(index_kind)
        parts = cls._plan(materialised, k, partitioner, bounds)
        shards: list[Shard] = []
        for sid, members in enumerate(parts):
            if not members:
                shards.append(Shard(sid=sid, database=None, cover=Rect.empty()))
                continue
            database = PointDatabase.build(members, index_kind=index_kind, **index_kwargs)
            cover = cls._cover(members)
            anchor = cls._anchor(members, cover)
            shards.append(
                Shard(
                    sid=sid,
                    database=database,
                    cover=cover,
                    anchor=anchor.location,
                    anchor_oid=anchor.oid,
                )
            )
        return cls(
            kind="points",
            shards=shards,
            index_kind=index_kind,
            partitioner=partitioner,
            objects=materialised,
            hot_threshold=hot_threshold,
        )

    @classmethod
    def build_uncertain(
        cls,
        objects: Iterable[UncertainObject],
        k: int,
        *,
        partitioner: PartitionMethod = "grid",
        index_kind: str = "pti",
        catalog_levels: Sequence[float] | None = DEFAULT_CATALOG_LEVELS,
        bounds: Rect | None = None,
        hot_threshold: int | None = None,
        **index_kwargs,
    ) -> "ShardedDatabase":
        """Partition uncertain objects into ``k`` shards and index each one.

        Each shard gets its own PTI (or other registry backend) built over
        only its members — the per-partition index construction the paper's
        production deployments would use.  ``catalog_levels`` behaves as in
        :meth:`UncertainDatabase.build`; ``hot_threshold`` as in
        :meth:`build_points`.
        """
        materialised = list(objects)
        cls._check_shardable(index_kind)
        parts = cls._plan(materialised, k, partitioner, bounds)
        shards: list[Shard] = []
        rebuilt: list[UncertainObject] = []
        for sid, members in enumerate(parts):
            if not members:
                shards.append(Shard(sid=sid, database=None, cover=Rect.empty()))
                continue
            database = UncertainDatabase.build(
                members,
                index_kind=index_kind,
                catalog_levels=catalog_levels,
                **index_kwargs,
            )
            # The database may have attached catalogs; keep the global object
            # list consistent with what the shards actually store.
            rebuilt.extend(database.objects)
            shards.append(Shard(sid=sid, database=database, cover=cls._cover(members)))
        return cls(
            kind="uncertain",
            shards=shards,
            index_kind=index_kind,
            partitioner=partitioner,
            objects=rebuilt if rebuilt else materialised,
            catalog_levels=tuple(catalog_levels) if catalog_levels is not None else None,
            hot_threshold=hot_threshold,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Number of partitions (including empty ones)."""
        return len(self.shards)

    def non_empty_shards(self) -> list[Shard]:
        """The shards that actually hold objects."""
        return [shard for shard in self.shards if not shard.is_empty]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def epochs(self) -> tuple[tuple[int, int], ...]:
        """``(sid, epoch)`` pairs of the non-empty shards, in shard-id order.

        The fine-grained invalidation signal for sharded result caching: a
        mutation bumps only the owning shard's epoch, so cached answers
        whose routed shards are all untouched stay reachable.
        """
        return tuple(
            (shard.sid, shard.database.epoch) for shard in self.non_empty_shards()
        )

    def epoch_scope(self, shards: Sequence[Shard] | None = None) -> tuple:
        """A hashable token pinning the state an answer over ``shards`` saw.

        ``(uid, version, ((sid, epoch), ...))`` over the given shards (all
        non-empty shards by default).  Two equal tokens guarantee the same
        shards held the same members — the invariant the parallel engine's
        result-cache key already relies on — so any answer derived from
        those shards is still exact.  Continuous subscriptions compare the
        token of a query's *currently routed* shards against the token
        recorded at its last evaluation to decide whether a mutation stream
        can have changed its answer.
        """
        if shards is None:
            shards = self.non_empty_shards()
        return (
            self.uid,
            self.version,
            tuple((shard.sid, shard.database.epoch) for shard in shards),
        )

    # ------------------------------------------------------------------ #
    # Per-shard execution
    # ------------------------------------------------------------------ #
    def shard_pipeline(self, sid: int, config) -> QueryPipeline:
        """The staged query pipeline of one shard (built lazily, cached).

        Each non-empty shard owns an ordinary
        :class:`~repro.core.pipeline.QueryPipeline` over its database — the
        very same stage runner the serial engine uses, so every engine
        feature (columnar batch filtering, PTI node pruning, pruner caching)
        works unchanged per shard.  The pipeline's result-cache stage is
        disabled: a shard computes *partial* answers, which must never be
        cached as whole-query answers (the parallel executor's parent
        consults the shared cache instead, with per-shard epoch keys).

        A cached pipeline is discarded when the shard's database instance
        was replaced wholesale (a re-split, or a shard emptying out);
        in-place mutations keep the pipeline, relying on the database epoch
        to refresh snapshots and samplers.  Pipelines are cached per
        configuration identity, so engines sharing this database under
        different configurations do not evict each other.
        """
        shard = self.shards[sid]
        if shard.database is None:
            raise ConfigurationError(f"shard {sid} is empty and has no pipeline")
        key = (sid, id(config))
        cached = self._pipelines.get(key)
        if cached is not None:
            cached_db, cached_config, pipeline = cached
            if cached_db is shard.database and cached_config is config:
                return pipeline
        # Shed entries pinning this shard's replaced database (a re-split or
        # an emptied shard leaves them unreachable forever otherwise), then
        # bound the configs retained per shard so a stream of short-lived
        # engines cannot grow the cache without limit.
        stale = [
            cached_key
            for cached_key, (cached_db, _, _) in self._pipelines.items()
            if cached_key[0] == sid and cached_db is not shard.database
        ]
        for cached_key in stale:
            del self._pipelines[cached_key]
        per_sid = [cached_key for cached_key in self._pipelines if cached_key[0] == sid]
        while len(per_sid) >= _PIPELINES_PER_SHARD:
            del self._pipelines[per_sid.pop(0)]  # insertion order = oldest first
        if self.kind == "points":
            pipeline = QueryPipeline(
                point_db=shard.database, config=config, cache=None
            )
        else:
            pipeline = QueryPipeline(
                uncertain_db=shard.database, config=config, cache=None
            )
        self._pipelines[key] = (shard.database, config, pipeline)
        return pipeline

    def execute_on_shard(
        self, sid: int, items: list[tuple[int, Query]], config
    ) -> list[Evaluation]:
        """Run routed ``(query_seq, query)`` pairs through one shard's pipeline.

        The sequence numbers are the queries' positions in the *global*
        workload, so position-keyed draw plans sample the same Monte-Carlo
        draws on every shard — the bitwise-parity contract of the parallel
        executor.
        """
        batch = [query for _, query in items]
        seqs = [int(seq) for seq, _ in items]
        return self.shard_pipeline(sid, config).run_batch(batch, seqs)

    # ------------------------------------------------------------------ #
    # Shard planning
    # ------------------------------------------------------------------ #
    def route_window(self, window: Rect) -> list[Shard]:
        """Shards whose cover overlaps ``window`` (in shard-id order).

        The window of a range query is its Minkowski-expanded region (or any
        subset of it, e.g. the Qp-expanded-query); shards the window misses
        cannot contribute candidates, because every member's MBR lies inside
        its shard's cover.  An empty window — or one entirely outside the
        data — routes to no shard at all.
        """
        if window.is_empty:
            return []
        return [
            shard
            for shard in self.shards
            if not shard.is_empty and shard.cover.overlaps(window)
        ]

    def route_nearest(self, issuer_region: Rect) -> list[Shard]:
        """Shards that can hold a nearest-neighbour winner for ``issuer_region``.

        For any issuer position, the anchor of any shard is a real object, so
        ``min_s max_{x ∈ U0} dist(x, anchor_s)`` upper-bounds the best
        achievable distance; a shard whose cover's minimum distance to the
        issuer region exceeds that bound can never win a draw.  Only defined
        for point shards (nearest-neighbour queries run over point objects).
        """
        if self.kind != "points":
            raise ConfigurationError("nearest-neighbour routing requires a point-object database")
        candidates = self.non_empty_shards()
        if not candidates:
            return []
        bound = min(
            issuer_region.max_distance_to_point(shard.anchor)
            for shard in candidates
            if shard.anchor is not None
        )
        return [
            shard
            for shard in candidates
            if shard.cover.min_distance_to_rect(issuer_region) <= bound
        ]

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def _shard_map(self) -> dict[int, int]:
        if self._oid_shard is None:
            self._oid_shard = {
                obj.oid: shard.sid
                for shard in self.shards
                if not shard.is_empty
                for obj in shard.database.objects
            }
        return self._oid_shard

    def _global_map(self) -> dict[int, int]:
        if self._oid_global is None:
            self._oid_global = {
                obj.oid: position for position, obj in enumerate(self.objects)
            }
        return self._oid_global

    def _global_add(self, obj) -> None:
        self._global_map()[obj.oid] = len(self.objects)
        self.objects.append(obj)

    def _global_remove(self, oid: int) -> None:
        # Swap-remove: the global list's order only matters at (re)build
        # time, so filling the hole with the last element keeps removal O(1).
        positions = self._global_map()
        position = positions.pop(oid)
        last = self.objects.pop()
        if last.oid != oid:
            self.objects[position] = last
            positions[last.oid] = position

    def _global_replace(self, obj) -> None:
        self.objects[self._global_map()[obj.oid]] = obj

    def owner_of(self, oid: int) -> Shard:
        """The shard currently storing the object with the given oid."""
        sid = self._shard_map().get(oid)
        if sid is None:
            raise MissingItemError(f"no object with oid {oid} in this sharded database")
        return self.shards[sid]

    def _route_insert(self, mbr: Rect) -> Shard:
        """The shard an incoming MBR is filed under: nearest cover wins.

        Any non-empty shard is a *correct* home (covers are maintained after
        every mutation, so window routing stays complete no matter where an
        object lives); nearest-cover keeps covers tight so routing stays
        selective.  Ties break towards the smaller shard id.  A fully
        drained database routes to the first shard, which is repopulated.
        """
        candidates = self.non_empty_shards()
        if not candidates:
            return self.shards[0]
        center = mbr.center
        return min(
            candidates,
            key=lambda shard: (shard.cover.min_distance_to_point(center), shard.sid),
        )

    def _member_catalog_levels(self, members: list) -> tuple[float, ...] | None:
        if self.catalog_levels is not None:
            return self.catalog_levels
        for member in members:
            if getattr(member, "catalog", None) is not None:
                return member.catalog.levels
        return None

    def _prepare_uncertain(self, obj: UncertainObject) -> UncertainObject:
        """Attach a U-catalog consistent with the existing members' levels."""
        if obj.catalog is not None:
            return obj
        levels = self.catalog_levels
        if levels is None:
            for shard in self.non_empty_shards():
                levels = self._member_catalog_levels(list(shard.database.objects))
                if levels is not None:
                    break
        return obj.with_catalog(levels) if levels is not None else obj

    def _retighten(self, shard: Shard) -> None:
        """Recompute a shard's cover and anchor exactly (O(shard size)).

        Only needed when the anchor member itself left (nearest-neighbour
        routing requires the anchor to be a *current* member) or after a
        re-split; ordinary mutations maintain the metadata in O(1) — inserts
        grow the cover exactly, deletes leave it conservatively loose.
        """
        if shard.database is None or len(shard.database) == 0:
            shard.database = None
            shard.cover = Rect.empty()
            shard.anchor = None
            shard.anchor_oid = None
            return
        members = list(shard.database.objects)
        shard.cover = self._cover(members)
        if self.kind == "points":
            anchor = self._anchor(members, shard.cover)
            shard.anchor = anchor.location
            shard.anchor_oid = anchor.oid
        else:
            shard.anchor = None
            shard.anchor_oid = None

    def _after_member_removed(self, shard: Shard, removed) -> None:
        """O(1) post-delete maintenance; the cover stays (loosely) complete."""
        if shard.database is None or len(shard.database) == 0:
            self._retighten(shard)
        elif removed.oid == shard.anchor_oid:
            self._retighten(shard)

    def _after_member_added(self, shard: Shard, stored) -> None:
        shard.cover = shard.cover.union_bounds(extract_mbr(stored))
        if self.kind == "points" and shard.anchor_oid is None:
            shard.anchor = stored.location
            shard.anchor_oid = stored.oid
        self._shard_map()[stored.oid] = shard.sid
        self._global_add(stored)
        if self.hot_threshold is not None and len(shard) > self.hot_threshold:
            self._resplit(shard)

    def insert(self, obj):
        """Add one object to the shard whose cover is nearest its MBR centre.

        Only the owning shard's index, snapshot epoch, cover and anchor are
        maintained; sibling shards are untouched.  Returns the stored object
        (uncertain objects may gain a U-catalog on the way in).
        """
        if obj.oid in self._shard_map():
            raise InvalidUpdateError(
                f"an object with oid {obj.oid} is already stored; "
                "delete or move it instead of inserting a duplicate"
            )
        if self.kind == "uncertain":
            obj = self._prepare_uncertain(obj)
        shard = self._route_insert(extract_mbr(obj))
        if shard.is_empty:
            # Every member was deleted: repopulate the routed shard with a
            # fresh single-object database (mirrors the unsharded databases,
            # which accept inserts into an emptied collection).
            self._rebuild_shard(shard, [obj])
            stored = shard.database.objects[0]
        else:
            stored = shard.database.insert(obj)
        self._after_member_added(shard, stored)
        self._emit_update(
            UpdateEvent(
                op=UpdateOp(action="insert", obj=stored),
                target=self.kind,
                oid=stored.oid,
                after=extract_mbr(stored),
                # A hot-shard re-split may have re-homed the object already;
                # report where it actually landed.
                sids=(self._shard_map()[stored.oid],),
            )
        )
        return stored

    def delete(self, oid: int):
        """Remove the object with the given oid from its owning shard.

        A shard whose last member leaves becomes an empty (index-less) shard;
        its id stays allocated so sibling routing is unaffected.  Returns the
        removed object.
        """
        shard = self.owner_of(oid)
        removed = shard.database.delete(oid)
        del self._shard_map()[oid]
        self._global_remove(oid)
        self._after_member_removed(shard, removed)
        self._emit_update(
            UpdateEvent(
                op=UpdateOp(action="delete", oid=oid, target=self.kind),
                target=self.kind,
                oid=oid,
                before=extract_mbr(removed),
                sids=(shard.sid,),
            )
        )
        return removed

    def move(self, oid: int, *, x: float | None = None, y: float | None = None, pdf=None):
        """Relocate one object, re-homing it when another shard fits better.

        Point databases take the new coordinates (``x``/``y``), uncertain
        databases the new pdf.  A move that stays within the owning shard is
        a single index update; one that crosses shards is a delete + insert
        pair, each side maintaining only its own shard.  Returns the stored
        (replacement) object.
        """
        if self.kind == "points":
            if x is None or y is None or pdf is not None:
                raise InvalidUpdateError("moving a point object takes x= and y= (no pdf)")
        else:
            if pdf is None or x is not None or y is not None:
                raise InvalidUpdateError("moving an uncertain object takes pdf= (no x/y)")
        shard = self.owner_of(oid)
        if self.kind == "points":
            new_mbr = Rect.from_point(Point(float(x), float(y)))
        else:
            new_mbr = pdf.region
        if self.kind == "points":
            move_op = UpdateOp(action="move", oid=oid, x=float(x), y=float(y), target="points")
        else:
            move_op = UpdateOp(action="move", oid=oid, pdf=pdf, target="uncertain")
        target = self._route_insert(new_mbr)
        if target.sid == shard.sid:
            previous_mbr = extract_mbr(shard.database.get(oid))
            if self.kind == "points":
                moved = shard.database.move(oid, float(x), float(y))
            else:
                moved = shard.database.move(oid, pdf)
            self._global_replace(moved)
            shard.cover = shard.cover.union_bounds(extract_mbr(moved))
            if moved.oid == shard.anchor_oid:
                # The anchor member itself moved; its recorded location must
                # follow (nearest-neighbour bounds require a real member).
                shard.anchor = moved.location
            self._emit_update(
                UpdateEvent(
                    op=move_op,
                    target=self.kind,
                    oid=oid,
                    before=previous_mbr,
                    after=extract_mbr(moved),
                    sids=(shard.sid,),
                )
            )
            return moved
        removed = shard.database.delete(oid)
        del self._shard_map()[oid]
        self._global_remove(oid)
        self._after_member_removed(shard, removed)
        if self.kind == "points":
            replacement = PointObject.at(oid, float(x), float(y))
        else:
            replacement = UncertainObject(oid=oid, pdf=pdf)
            if removed.catalog is not None:
                replacement = replacement.with_catalog(removed.catalog.levels)
            else:
                replacement = self._prepare_uncertain(replacement)
        stored = target.database.insert(replacement)
        self._after_member_added(target, stored)
        self._emit_update(
            UpdateEvent(
                op=move_op,
                target=self.kind,
                oid=oid,
                before=extract_mbr(removed),
                after=extract_mbr(stored),
                sids=(shard.sid, self._shard_map()[stored.oid]),
            )
        )
        return stored

    def _rebuild_shard(self, shard: Shard, members: list) -> None:
        self.version += 1
        if self.kind == "points":
            shard.database = PointDatabase.build(members, index_kind=self.index_kind)
        else:
            database = UncertainDatabase.build(
                members, index_kind=self.index_kind, catalog_levels=None
            )
            # The members already carry catalogs; record their levels so the
            # fresh shard database keeps attaching matching ones on insert.
            database.catalog_levels = self._member_catalog_levels(members)
            shard.database = database
        self._retighten(shard)

    def _resplit(self, shard: Shard) -> None:
        """Split one hot shard in place: a median cut into two shards.

        The original shard id keeps the left half (so queued routing
        decisions stay valid) and the right half gets a brand-new id
        appended after the existing shards; no sibling shard is touched.
        """
        members = list(shard.database.objects)
        assignments = median_assignments(mbr_centers(members), 2)
        left = [member for member, side in zip(members, assignments) if side == 0]
        right = [member for member, side in zip(members, assignments) if side == 1]
        if not left or not right:
            return
        self._rebuild_shard(shard, left)
        sibling = Shard(sid=len(self.shards), database=None, cover=Rect.empty())
        self.shards.append(sibling)
        self._rebuild_shard(sibling, right)
        shard_map = self._shard_map()
        for member in right:
            shard_map[member.oid] = sibling.sid
