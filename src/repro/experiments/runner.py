"""Generic machinery for running query batches and collecting figure data."""

from __future__ import annotations
from repro.core.errors import DatasetError, MissingItemError

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.engine import ImpreciseQueryEngine
from repro.core.parallel import ParallelEngine
from repro.core.session import Session
from repro.experiments.config import ExperimentConfig
from repro.core.queries import (
    QueryResult,
    RangeQuery,
    RangeQuerySpec,
    RangeQueryTarget,
)
from repro.core.statistics import (
    AggregatedStatistics,
    EvaluationStatistics,
    aggregate_statistics,
)
from repro.datasets.workload import QueryWorkload
from repro.uncertainty.region import UncertainObject

#: A callable that evaluates one query for one issuer and returns the result
#: and its statistics.  Kept for custom evaluators (e.g. the basic method of
#: Section 3.3) that do not go through :class:`ImpreciseQueryEngine`.
QueryRunner = Callable[[UncertainObject], tuple[QueryResult, EvaluationStatistics]]


def run_query_batch(
    workload: QueryWorkload,
    count: int,
    runner: QueryRunner,
) -> AggregatedStatistics:
    """Issue ``count`` workload queries through ``runner`` and average the statistics.

    This mirrors the paper's methodology: every plotted data point is the
    average response time over a batch of randomly placed queries.
    """
    stats: list[EvaluationStatistics] = []
    for issuer in workload.issuers(count):
        _, query_stats = runner(issuer)
        stats.append(query_stats)
    return aggregate_statistics(stats)


def run_engine_batch(
    engine: ImpreciseQueryEngine | ParallelEngine,
    workload: QueryWorkload,
    count: int,
    *,
    target: RangeQueryTarget,
    threshold: float | None = None,
    spec: RangeQuerySpec | None = None,
) -> AggregatedStatistics:
    """Issue ``count`` workload queries through ``engine.evaluate_many``.

    The engine-native counterpart of :func:`run_query_batch`: the whole batch
    of :class:`RangeQuery` objects goes through the engine's amortised batch
    path, which is how the figures issue their 500 queries per data point.
    A :class:`~repro.core.parallel.ParallelEngine` drops in unchanged (the
    figures stay single-shard so index I/O counters keep their meaning, but
    sharded-execution studies reuse this same harness).  ``threshold`` and
    ``spec`` default to the workload's own values.
    """
    spec = workload.spec if spec is None else spec
    threshold = workload.threshold if threshold is None else threshold
    queries = [
        RangeQuery(issuer=issuer, spec=spec, threshold=threshold, target=target)
        for issuer in workload.issuers(count)
    ]
    evaluations = engine.evaluate_many(queries)
    return aggregate_statistics([evaluation.statistics for evaluation in evaluations])


def run_session_batch(
    session: Session,
    workload: QueryWorkload,
    count: int,
    *,
    target: RangeQueryTarget,
    threshold: float | None = None,
    spec: RangeQuerySpec | None = None,
    config: ExperimentConfig | None = None,
) -> AggregatedStatistics:
    """:func:`run_engine_batch` through a session's engine.

    Works for plain and sharded sessions alike; passing an
    :class:`~repro.experiments.config.ExperimentConfig` first applies its
    ``shards`` / ``shard_workers`` settings
    (:meth:`~repro.experiments.config.ExperimentConfig.sharded_session`), so
    one config knob switches an experiment to shard-parallel execution.
    """
    if config is not None:
        session = config.sharded_session(session)
    return run_engine_batch(
        session.engine, workload, count, target=target, threshold=threshold, spec=spec
    )


@dataclass(frozen=True)
class SeriesPoint:
    """One plotted point of a figure: an x value plus the measured averages."""

    x: float
    response_time_ms: float
    candidates: float
    node_accesses: float
    results: float
    probability_computations: float = 0.0

    @staticmethod
    def from_aggregate(x: float, aggregate: AggregatedStatistics) -> "SeriesPoint":
        """Build a point from a batch aggregate."""
        return SeriesPoint(
            x=x,
            response_time_ms=aggregate.mean_response_time_ms,
            candidates=aggregate.mean_candidates,
            node_accesses=aggregate.mean_node_accesses,
            results=aggregate.mean_results,
            probability_computations=aggregate.mean_probability_computations,
        )


@dataclass
class FigureResult:
    """All measured series of one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    series: dict[str, list[SeriesPoint]] = field(default_factory=dict)
    notes: str = ""

    def add_point(self, series_name: str, point: SeriesPoint) -> None:
        """Append a measured point to the named series."""
        self.series.setdefault(series_name, []).append(point)

    def series_names(self) -> list[str]:
        """Names of the measured series, in insertion order."""
        return list(self.series.keys())

    def x_values(self) -> list[float]:
        """Sorted union of x values across all series."""
        values = {point.x for points in self.series.values() for point in points}
        return sorted(values)

    def value_at(self, series_name: str, x: float) -> SeriesPoint:
        """The measured point of ``series_name`` at ``x`` (raises when missing)."""
        for point in self.series.get(series_name, []):
            if point.x == x:
                return point
        raise MissingItemError(f"series {series_name!r} has no point at x={x}")

    def response_times(self, series_name: str) -> list[float]:
        """Response times (ms) of one series, ordered by x."""
        points = sorted(self.series.get(series_name, []), key=lambda p: p.x)
        return [point.response_time_ms for point in points]

    def mean_ratio(self, numerator: str, denominator: str) -> float:
        """Average ratio of the response times of two series over common x values.

        Used by the shape checks: e.g. "the basic method is an order of
        magnitude slower than the enhanced method" becomes
        ``mean_ratio('basic', 'enhanced') > 5``.
        """
        ratios: list[float] = []
        for x in self.x_values():
            try:
                top = self.value_at(numerator, x).response_time_ms
                bottom = self.value_at(denominator, x).response_time_ms
            except KeyError:
                continue
            if bottom > 0:
                ratios.append(top / bottom)
        if not ratios:
            raise DatasetError("the two series share no x values")
        return sum(ratios) / len(ratios)


def sweep(
    values: Iterable[float],
    make_runner: Callable[[float], tuple[QueryWorkload, int, QueryRunner]],
) -> list[SeriesPoint]:
    """Run one series of a sweep: for every x value build a runner and batch it."""
    points: list[SeriesPoint] = []
    for x in values:
        workload, count, runner = make_runner(x)
        aggregate = run_query_batch(workload, count, runner)
        points.append(SeriesPoint.from_aggregate(x, aggregate))
    return points
