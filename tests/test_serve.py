"""Tests for the asyncio serving front-end.

Concurrent clients against a live TCP server must receive answers bitwise
identical to calling ``Session.evaluate`` directly on the served session
(the ``query_keyed`` draw plan the server forces makes a query's draws a
pure function of its content, so coalescing cannot change them), updates
must be observed in submission order, backpressure must reject cleanly with
the typed error, and the protocol envelopes must round-trip losslessly.

No pytest-asyncio in the toolchain: each test drives its own event loop via
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.errors import (
    BackpressureError,
    ConfigurationError,
    ReproError,
    SchemaError,
    UnknownObjectError,
)
from repro.core.queries import NearestNeighborQuery, RangeQuery, RangeQuerySpec
from repro.core.session import Session
from repro.core.updates import UpdateBatch
from repro.geometry.rect import Rect
from repro.serve import QueryServer, ServeClient
from repro.serve.schemas import (
    decode_request,
    decode_response,
    error_from_dict,
    error_response,
    ok_response,
    request_envelope,
)
from repro.uncertainty.region import PointObject, UncertainObject

SPACE = Rect(0.0, 0.0, 1_000.0, 1_000.0)


def make_session() -> Session:
    points = [
        PointObject.at(oid, (oid * 37.0) % 1_000, (oid * 91.0) % 1_000)
        for oid in range(400)
    ]
    return Session.from_objects(points=points, bounds=SPACE)


def issuer_at(index: int, half: float = 40.0) -> UncertainObject:
    center = (index * 53.0) % 880 + 60
    return UncertainObject.uniform(
        0, Rect(center - half, center - half, center + half, center + half)
    )


def range_query(index: int, threshold: float = 0.0) -> RangeQuery:
    return RangeQuery(
        issuer=issuer_at(index),
        spec=RangeQuerySpec.square(90.0),
        threshold=threshold,
        target="points",
    )


async def start_tcp(server: QueryServer):
    tcp = await server.serve("127.0.0.1", 0)
    return tcp, tcp.sockets[0].getsockname()[1]


class TestCoalescedParity:
    def test_concurrent_clients_get_bitwise_identical_answers(self):
        async def scenario():
            server = QueryServer(make_session(), window=0.003)
            tcp, port = await start_tcp(server)
            queries = [range_query(i, threshold=0.1 * (i % 3)) for i in range(24)]
            # Direct evaluation on the *served* session is the parity oracle.
            direct = [server.session.evaluate(query) for query in queries]
            clients = [await ServeClient.connect("127.0.0.1", port) for _ in range(8)]
            try:
                served = await asyncio.gather(
                    *[
                        clients[i % len(clients)].query(query)
                        for i, query in enumerate(queries)
                    ]
                )
            finally:
                for client in clients:
                    await client.aclose()
                tcp.close()
                await tcp.wait_closed()
                await server.stop()
            assert [s.probabilities() for s in served] == [
                d.probabilities() for d in direct
            ]
            # Waves really coalesced (not 24 singleton dispatches).
            stats = await server.stats()
            assert stats["serving"]["largest_wave"] > 1
            return stats

        asyncio.run(scenario())

    def test_window_zero_dispatches_per_request(self):
        async def scenario():
            server = QueryServer(make_session(), window=0.0)
            async with server:
                queries = [range_query(i) for i in range(5)]
                direct = [server.session.evaluate(query) for query in queries]
                served = await asyncio.gather(
                    *[server.submit_query(query) for query in queries]
                )
                stats = await server.stats()
            assert [s.probabilities() for s in served] == [
                d.probabilities() for d in direct
            ]
            assert stats["serving"]["largest_wave"] == 1
            assert stats["serving"]["waves"] == 5

        asyncio.run(scenario())

    def test_nearest_neighbor_parity(self):
        async def scenario():
            server = QueryServer(make_session(), window=0.002)
            async with server:
                query = NearestNeighborQuery(issuer=issuer_at(3), samples=64)
                direct = server.session.evaluate(query)
                served = await server.submit_query(query)
            assert served.probabilities() == direct.probabilities()

        asyncio.run(scenario())


class TestUpdates:
    def test_updates_observed_in_submission_order(self):
        async def scenario():
            server = QueryServer(make_session(), window=0.005, max_wave=64)
            async with server:
                probe = RangeQuery.ipq(
                    UncertainObject.uniform(0, Rect(460, 460, 540, 540)),
                    RangeQuerySpec.square(60.0),
                )
                # Same wave: query before the insert, the insert, query after.
                before_future = asyncio.ensure_future(server.submit_query(probe))
                await asyncio.sleep(0)
                insert_future = asyncio.ensure_future(
                    server.submit_update(
                        UpdateBatch().insert(PointObject.at(9_001, 500.0, 500.0))
                    )
                )
                await asyncio.sleep(0)
                after_future = asyncio.ensure_future(server.submit_query(probe))
                before, applied, after = await asyncio.gather(
                    before_future, insert_future, after_future
                )
            assert applied == 1
            assert 9_001 not in before.oids()
            assert 9_001 in after.oids()

        asyncio.run(scenario())

    def test_failed_update_isolated_from_neighbours(self):
        async def scenario():
            server = QueryServer(make_session(), window=0.005, max_wave=64)
            async with server:
                good = asyncio.ensure_future(
                    server.submit_update(
                        UpdateBatch().insert(PointObject.at(9_002, 100.0, 100.0))
                    )
                )
                await asyncio.sleep(0)
                bad = asyncio.ensure_future(
                    server.submit_update(UpdateBatch().delete(777_777, target="points"))
                )
                await asyncio.sleep(0)
                query = asyncio.ensure_future(
                    server.submit_query(
                        RangeQuery.ipq(
                            UncertainObject.uniform(0, Rect(60, 60, 140, 140)),
                            RangeQuerySpec.square(60.0),
                        )
                    )
                )
                applied = await good
                with pytest.raises(UnknownObjectError):
                    await bad
                evaluation = await query
            assert applied == 1
            assert 9_002 in evaluation.oids()

        asyncio.run(scenario())


class TestBackpressure:
    def test_rejects_past_high_water_mark(self):
        async def scenario():
            # Dispatch loop never started: the queue fills deterministically.
            server = QueryServer(make_session(), max_pending=3)
            parked = [
                asyncio.ensure_future(server.submit_query(range_query(i)))
                for i in range(3)
            ]
            await asyncio.sleep(0)
            with pytest.raises(BackpressureError):
                await server.submit_query(range_query(3))
            stats = await server.stats()
            assert stats["serving"]["rejected"] == 1
            assert stats["serving"]["pending"] == 3
            for future in parked:
                future.cancel()

        asyncio.run(scenario())

    def test_backpressure_error_is_a_runtime_error(self):
        assert issubclass(BackpressureError, RuntimeError)
        assert issubclass(BackpressureError, ReproError)

    def test_server_recovers_after_rejection(self):
        async def scenario():
            server = QueryServer(make_session(), window=0.0, max_pending=2)
            async with server:
                first = await server.submit_query(range_query(0))
            assert first.probabilities() == (
                server.session.evaluate(range_query(0)).probabilities()
            )

        asyncio.run(scenario())


class TestProtocol:
    def test_request_envelope_round_trip(self):
        envelope = json.loads(json.dumps(request_envelope("query", 7, {"a": 1})))
        op, rid, payload = decode_request(envelope)
        assert (op, rid, payload) == ("query", 7, {"a": 1})

    def test_unknown_op_rejected(self):
        with pytest.raises(SchemaError):
            request_envelope("explode", 1)
        with pytest.raises(SchemaError):
            decode_request({"schema": "repro.serve", "version": 1, "op": "explode"})

    def test_error_model_round_trips_typed_exceptions(self):
        original = BackpressureError("queue full")
        envelope = json.loads(json.dumps(error_response(3, original)))
        rebuilt = error_from_dict(envelope["error"])
        assert type(rebuilt) is BackpressureError
        assert str(rebuilt) == "queue full"
        with pytest.raises(BackpressureError):
            decode_response(envelope)

    def test_unknown_error_code_decodes_to_base_class(self):
        rebuilt = error_from_dict({"code": "martian", "message": "?"})
        assert type(rebuilt) is ReproError

    def test_ok_response_round_trip(self):
        envelope = json.loads(json.dumps(ok_response(9, {"answers": []})))
        assert decode_response(envelope) == {"answers": []}

    def test_stats_request_served_verbatim(self):
        async def scenario():
            server = QueryServer(make_session(), window=0.001)
            tcp, port = await start_tcp(server)
            try:
                async with await ServeClient.connect("127.0.0.1", port) as client:
                    remote = await client.stats()
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.stop()
            local = await server.stats()
            assert remote["engine"] == local["engine"]
            assert remote["config"] == local["config"]
            assert remote["databases"] == local["databases"]
            # describe() payloads are JSON-safe by construction.
            json.dumps(remote)

        asyncio.run(scenario())

    def test_malformed_line_gets_structured_error(self):
        async def scenario():
            server = QueryServer(make_session())
            tcp, port = await start_tcp(server)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.stop()
            assert response["ok"] is False
            assert response["error"]["code"] == "schema"

        asyncio.run(scenario())


class TestConfiguration:
    def test_invalid_knobs_raise_configuration_error(self):
        session = make_session()
        with pytest.raises(ConfigurationError):
            QueryServer(session, window=-0.001)
        with pytest.raises(ConfigurationError):
            QueryServer(session, max_pending=0)
        with pytest.raises(ConfigurationError):
            QueryServer(session, max_wave=0)

    def test_server_forces_query_keyed_draw_plan(self):
        server = QueryServer(make_session())
        assert server.session.engine.config.draw_plan == "query_keyed"

    def test_per_oid_sessions_keep_their_plan(self):
        session = make_session().with_config(draw_plan="per_oid")
        server = QueryServer(session)
        assert server.session.engine.config.draw_plan == "per_oid"
        assert server.session is session
