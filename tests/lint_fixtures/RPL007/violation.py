# lint-fixture-path: repro/core/example.py
"""An observable database whose mutator forgets to emit."""

from repro.core.updates import MutationObservable


class SilentDatabase(MutationObservable):
    def insert(self, obj):
        self.objects.append(obj)
        return obj
