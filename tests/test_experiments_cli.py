"""Tests for the experiment CLI."""

from repro.experiments.cli import build_parser, main, make_config


class TestParser:
    def test_defaults_select_all_figures(self):
        args = build_parser().parse_args([])
        assert len(args.figures) == 6

    def test_quick_flag(self):
        args = build_parser().parse_args(["--quick"])
        config = make_config(args)
        assert config.queries_per_point <= 5

    def test_scale_and_queries_overrides(self):
        args = build_parser().parse_args(["--scale", "0.5", "--queries", "7"])
        config = make_config(args)
        assert config.dataset_scale == 0.5
        assert config.queries_per_point == 7


class TestMain:
    def test_runs_single_figure_and_writes_csv(self, tmp_path, capsys):
        exit_code = main(
            [
                "--figures",
                "figure_11",
                "--quick",
                "--out",
                str(tmp_path),
            ]
        )
        captured = capsys.readouterr()
        assert "figure_11" in captured.out
        assert (tmp_path / "figure_11.csv").exists()
        assert exit_code in (0, 1)  # shape checks may be noisy at tiny scale
