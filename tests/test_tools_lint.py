"""Tests of the ``repro.tools.lint`` invariant analyzer.

Every rule is exercised through a pair of on-disk fixtures
(``tests/lint_fixtures/<RULE>/violation.py`` and ``clean.py``); each fixture
claims its logical location with a first-line ``# lint-fixture-path:``
marker so path-scoped rules apply.  The real tree is also linted in full —
the analyzer landing green with zero suppressions *is* the regression
guard.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.lint import (
    Diagnostic,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    run_cross_checks,
)
from repro.tools.lint.__main__ import main
from repro.tools.lint.engine import (
    ENGINE_RULE_ID,
    iter_python_files,
    logical_relpath,
    parse_suppressions,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

RULE_IDS = sorted(rule.rule_id for rule in all_rules())


def lint_fixture(rule_id: str, kind: str) -> list[Diagnostic]:
    source = (FIXTURES / rule_id / f"{kind}.py").read_text(encoding="utf-8")
    return lint_source(source, f"fixture/{rule_id}/{kind}.py", [get_rule(rule_id)])


# --------------------------------------------------------------------------- #
# Registry shape
# --------------------------------------------------------------------------- #
def test_at_least_eight_rules_registered():
    assert len(RULE_IDS) >= 8
    assert all(rule_id.startswith("RPL") for rule_id in RULE_IDS)
    assert len(set(RULE_IDS)) == len(RULE_IDS)


def test_every_rule_has_description_and_severity():
    for rule in all_rules():
        assert rule.description
        assert rule.severity in ("error", "warning")


def test_every_rule_has_fixture_pair():
    for rule_id in RULE_IDS:
        assert (FIXTURES / rule_id / "violation.py").is_file(), rule_id
        assert (FIXTURES / rule_id / "clean.py").is_file(), rule_id


# --------------------------------------------------------------------------- #
# Per-rule fixtures
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_violating_fixture_is_flagged(rule_id):
    diagnostics = lint_fixture(rule_id, "violation")
    assert diagnostics, f"{rule_id} violation fixture produced no diagnostics"
    assert {d.rule for d in diagnostics} == {rule_id}
    for diag in diagnostics:
        assert diag.line >= 1
        assert diag.message


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_is_silent(rule_id):
    diagnostics = lint_fixture(rule_id, "clean")
    assert diagnostics == [], [d.message for d in diagnostics]


# --------------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------------- #
def test_suppression_silences_matching_diagnostic():
    source = (
        "# lint-fixture-path: repro/core/example.py\n"
        "def bad(v):\n"
        '    raise ValueError(v)  # repro-lint: disable=RPL004\n'
    )
    assert lint_source(source, "x.py", [get_rule("RPL004")]) == []


def test_unused_suppression_is_reported():
    source = (
        "# lint-fixture-path: repro/core/example.py\n"
        "x = 1  # repro-lint: disable=RPL004\n"
    )
    diagnostics = lint_source(source, "x.py", [get_rule("RPL004")])
    assert [d.rule for d in diagnostics] == [ENGINE_RULE_ID]
    assert "unused suppression" in diagnostics[0].message
    assert diagnostics[0].line == 2


def test_suppression_only_covers_named_rule():
    source = (
        "# lint-fixture-path: repro/core/example.py\n"
        "def bad(v):\n"
        '    raise ValueError(v)  # repro-lint: disable=RPL008\n'
    )
    diagnostics = lint_source(source, "x.py", [get_rule("RPL004")])
    rules = sorted(d.rule for d in diagnostics)
    # The violation survives AND the mismatched suppression is dead.
    assert rules == [ENGINE_RULE_ID, "RPL004"]


def test_suppression_marker_in_docstring_is_not_a_suppression():
    source = '"""Docs show the syntax: # repro-lint: disable=RPL004."""\n'
    assert parse_suppressions(source) == {}


def test_suppression_parses_multiple_ids():
    table = parse_suppressions("x = 1  # repro-lint: disable=RPL001, RPL009\n")
    assert table == {1: {"RPL001", "RPL009"}}


def test_syntax_error_reports_engine_diagnostic():
    diagnostics = lint_source("def broken(:\n", "x.py")
    assert [d.rule for d in diagnostics] == [ENGINE_RULE_ID]
    assert "could not parse" in diagnostics[0].message


# --------------------------------------------------------------------------- #
# The real tree is the regression fixture
# --------------------------------------------------------------------------- #
def test_source_tree_is_clean():
    diagnostics = lint_paths([REPO_ROOT / "src"], cross_checks=False)
    assert diagnostics == [], [
        f"{d.path}:{d.line}: {d.rule} {d.message}" for d in diagnostics
    ]


def test_cross_checks_pass_on_live_registries():
    assert run_cross_checks() == []


def test_zero_baseline_suppressions_in_src():
    offenders = [
        str(file)
        for file in iter_python_files([REPO_ROOT / "src"])
        if parse_suppressions(file.read_text(encoding="utf-8"))
    ]
    assert offenders == []


def test_walker_skips_fixture_directories():
    files = list(iter_python_files([REPO_ROOT / "tests"]))
    assert files, "walker found no test files"
    assert all("lint_fixtures" not in file.parts for file in files)


def test_logical_relpath_strips_src_prefix():
    assert logical_relpath(Path("src/repro/core/engine.py")) == "repro/core/engine.py"
    assert logical_relpath(Path("tests/test_engine.py")) == "tests/test_engine.py"
    assert (
        logical_relpath(Path("/abs/repo/src/repro/errors.py")) == "repro/errors.py"
    )


# --------------------------------------------------------------------------- #
# CLI contract
# --------------------------------------------------------------------------- #
def test_cli_exit_zero_on_clean_path(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert main([str(clean), "--no-cross-checks"]) == 0
    assert capsys.readouterr().out == ""


def test_cli_exit_one_with_text_diagnostics(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "# lint-fixture-path: repro/core/example.py\n"
        "def f(v):\n"
        "    raise ValueError(v)\n",
        encoding="utf-8",
    )
    assert main([str(bad), "--no-cross-checks"]) == 1
    out = capsys.readouterr().out
    assert "RPL004" in out
    assert "1 diagnostic(s)" in out


def test_cli_json_output_is_machine_readable(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "# lint-fixture-path: repro/core/example.py\n"
        "def f(v):\n"
        "    raise ValueError(v)\n",
        encoding="utf-8",
    )
    assert main([str(bad), "--format", "json", "--no-cross-checks"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    (diag,) = payload["diagnostics"]
    assert diag["rule"] == "RPL004"
    assert diag["severity"] == "error"
    assert diag["line"] == 3


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out
