"""Tests for the epoch-keyed result cache and its engine integration.

Covers the cache data structure itself (LRU bounds, counters, issuer
pinning), the ``EngineConfig`` validation of the new cache knobs, serving
behaviour in the serial engine, the per-shard fine-grained invalidation of
sharded sessions, and the ``Session.cached()`` / ``Session.stats()``
surface.
"""

import pytest

from repro.core.cache import ResultCache
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.queries import NearestNeighborQuery, QueryResult, RangeQuery, RangeQuerySpec
from repro.core.session import Session
from repro.core.statistics import EvaluationStatistics
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject


def _issuer(x=5_000.0, y=5_000.0, half=250.0, oid=0):
    region = Rect.from_center(Point(x, y), half, half)
    return UncertainObject(oid=oid, pdf=UniformPdf(region)).with_catalog()


def _gaussian_issuer(x=5_000.0, y=5_000.0, half=250.0, oid=1):
    region = Rect.from_center(Point(x, y), half, half)
    return UncertainObject(oid=oid, pdf=TruncatedGaussianPdf(region)).with_catalog()


class TestResultCacheUnit:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=0)
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=-3)
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=1.5)
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=True)
        assert ResultCache(capacity=1).capacity == 1

    def test_lru_eviction_and_counters(self):
        cache = ResultCache(capacity=2)
        issuer = _issuer()
        result = QueryResult()
        result.add(7, 0.5)
        cache.store("a", issuer, result, EvaluationStatistics())
        cache.store("b", issuer, result, EvaluationStatistics())
        assert cache.lookup("a", issuer) is not None  # refreshes "a"
        cache.store("c", issuer, result, EvaluationStatistics())  # evicts "b"
        assert cache.lookup("b", issuer) is None
        assert cache.lookup("a", issuer) is not None
        assert cache.lookup("c", issuer) is not None
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 3
        assert cache.stats.misses == 1
        assert len(cache) == 2
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_issuer_identity_pinned(self):
        cache = ResultCache(capacity=4)
        issuer = _issuer()
        impostor = _issuer()  # equal content, different object
        result = QueryResult()
        cache.store("k", issuer, result, EvaluationStatistics())
        assert cache.lookup("k", impostor) is None
        # The colliding entry is dropped, so the original is gone too.
        assert cache.lookup("k", issuer) is None

    def test_materialise_returns_independent_copies(self):
        cache = ResultCache(capacity=4)
        issuer = _issuer()
        result = QueryResult()
        result.add(1, 0.9)
        stats = EvaluationStatistics(results_returned=1)
        stats.record_pruned("filter", 3)
        cache.store("k", issuer, result, stats)
        result.add(2, 0.1)  # caller mutates after the fill
        stats.record_pruned("filter", 5)
        first, first_stats = cache.lookup("k", issuer).materialise()
        assert [answer.oid for answer in first] == [1]
        assert first_stats.pruned == {"filter": 3}
        first.add(3, 0.2)  # hit consumer mutates its copy
        first_stats.record_pruned("filter", 100)
        second, second_stats = cache.lookup("k", issuer).materialise()
        assert [answer.oid for answer in second] == [1]
        assert second_stats.pruned == {"filter": 3}

    def test_clear_drops_entries_keeps_counters(self):
        cache = ResultCache(capacity=4)
        issuer = _issuer()
        cache.store("k", issuer, QueryResult(), EvaluationStatistics())
        cache.lookup("k", issuer)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestEngineConfigCacheValidation:
    def test_cache_must_be_result_cache(self):
        with pytest.raises(ValueError, match="ResultCache"):
            EngineConfig(cache=128, draw_plan="query_keyed")

    def test_cache_with_stream_plan_rejected(self):
        with pytest.raises(ValueError, match="replay determinism"):
            EngineConfig(cache=ResultCache(capacity=8), draw_plan="stream")

    def test_cache_with_deterministic_plans_accepted(self):
        for plan in ("per_oid", "query_keyed"):
            config = EngineConfig(cache=ResultCache(capacity=8), draw_plan=plan)
            assert config.cache is not None

    def test_unknown_draw_plan_rejected(self):
        with pytest.raises(ValueError, match="draw_plan"):
            EngineConfig(draw_plan="chaotic")

    def test_fingerprint_excludes_cache(self):
        base = EngineConfig(draw_plan="query_keyed")
        cached = EngineConfig(draw_plan="query_keyed", cache=ResultCache(capacity=8))
        assert base.fingerprint() == cached.fingerprint()
        assert base.fingerprint() != EngineConfig(
            draw_plan="query_keyed", monte_carlo_samples=99
        ).fingerprint()


@pytest.fixture()
def cached_session(small_points, small_uncertain):
    session = Session.from_objects(points=small_points, uncertain=small_uncertain)
    return session.cached(capacity=256)


class TestSerialEngineCaching:
    def test_repeated_query_served_from_cache(self, cached_session, default_spec):
        issuer = _issuer()
        query = RangeQuery.cipq(issuer, default_spec, 0.3)
        first = cached_session.evaluate(query)
        second = cached_session.evaluate(query)
        stats = cached_session.stats()
        assert stats.cache["hits"] == 1
        assert stats.cache["misses"] == 1
        assert second.probabilities() == first.probabilities()

    def test_cached_answers_identical_to_uncached(
        self, small_points, small_uncertain, default_spec
    ):
        issuers = [_issuer(), _gaussian_issuer()]
        queries = []
        for issuer in issuers:
            queries.append(RangeQuery.ipq(issuer, default_spec))
            queries.append(RangeQuery.ciuq(issuer, default_spec, 0.4))
            queries.append(NearestNeighborQuery(issuer=issuer, samples=64))
        workload = queries * 3  # repeats hit the cache
        plain = Session.from_objects(
            points=small_points,
            uncertain=small_uncertain,
            config=EngineConfig(draw_plan="query_keyed"),
        )
        cached = Session.from_objects(
            points=small_points, uncertain=small_uncertain
        ).cached(capacity=64)
        expected = [e.probabilities() for e in plain.evaluate_many(workload)]
        actual = [e.probabilities() for e in cached.evaluate_many(workload)]
        assert actual == expected
        assert cached.stats().cache["hits"] >= len(queries) * 2

    def test_mutation_invalidates_only_mutated_database(
        self, cached_session, default_spec
    ):
        issuer = _issuer()
        point_query = RangeQuery.ipq(issuer, default_spec)
        uncertain_query = RangeQuery.iuq(issuer, default_spec)
        cached_session.evaluate_many([point_query, uncertain_query])
        cached_session.insert(PointObject.at(999_001, 5_010.0, 5_010.0))
        second = cached_session.evaluate_many([point_query, uncertain_query])
        stats = cached_session.stats()
        # The uncertain answer is still served (epoch unchanged); the point
        # answer recomputed — and sees the new object.
        assert stats.cache["hits"] == 1
        assert stats.cache["misses"] == 3
        assert 999_001 in second[0].oids()
        assert stats.epochs["points"] == 1
        assert stats.epochs["uncertain"] == 0

    def test_per_oid_plan_caches_only_draw_free_answers(
        self, small_points, default_spec
    ):
        from repro.geometry.circle import Circle
        from repro.uncertainty.pdf import UniformCirclePdf

        config = EngineConfig(draw_plan="per_oid", cache=ResultCache(capacity=32))
        engine = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points), config=config
        )
        exact_query = RangeQuery.ipq(_issuer(), default_spec)  # closed form
        circular = UncertainObject(
            oid=5, pdf=UniformCirclePdf(Circle(Point(5_000.0, 5_000.0), 250.0))
        )
        sampled_query = RangeQuery.ipq(circular, default_spec)  # no closed form → MC
        engine.evaluate_many([exact_query, sampled_query] * 2)
        # Only the draw-free answer was stored; the sampled one recomputed
        # both times (its draws are position-keyed, so a replay would differ).
        assert config.cache.stats.hits == 1
        assert len(config.cache) == 1

    def test_nn_default_samples_spellings_share_one_identity(self, small_points):
        """``samples=None`` and an explicit default are the *same* request.

        Regression test: the content fingerprint (hence the draw token) and
        the cache key must both resolve the default, or the two spellings
        would share a cache entry while drawing different samples — and a
        hit would no longer be bitwise-identical to recomputing.
        """
        from repro.core.plan import (
            DEFAULT_NN_SAMPLES,
            query_cache_key,
            query_draw_token,
            query_fingerprint,
        )

        issuer = _gaussian_issuer()
        implicit = NearestNeighborQuery(issuer=issuer)
        explicit = NearestNeighborQuery(issuer=issuer, samples=DEFAULT_NN_SAMPLES)
        assert query_fingerprint(implicit) == query_fingerprint(explicit)
        assert query_draw_token(implicit) == query_draw_token(explicit)
        assert query_cache_key(implicit) == query_cache_key(explicit)
        # End to end: serving either spelling from an entry filled by the
        # other equals uncached evaluation.
        config = EngineConfig(draw_plan="query_keyed", cache=ResultCache(capacity=8))
        cached_engine = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points), config=config
        )
        plain_engine = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points),
            config=EngineConfig(draw_plan="query_keyed"),
        )
        cached_engine.evaluate(implicit)
        served = cached_engine.evaluate(explicit)  # hit on implicit's entry
        assert config.cache.stats.hits == 1
        expected = plain_engine.evaluate(explicit)
        assert served.probabilities() == expected.probabilities()

    def test_cache_hit_skips_plan_compilation(self, small_points, default_spec):
        """A hit must not rebuild the pruner's expanded regions."""
        import repro.core.pipeline as pipeline_module

        engine = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points),
            config=EngineConfig(draw_plan="query_keyed", cache=ResultCache(capacity=8)),
        )
        query = RangeQuery.cipq(_issuer(), default_spec, 0.4)
        engine.evaluate(query)
        calls = []
        original = pipeline_module.plan_query

        def counting_plan_query(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        pipeline_module.plan_query = counting_plan_query
        try:
            engine.evaluate(query)  # hit
        finally:
            pipeline_module.plan_query = original
        assert calls == []

    def test_cross_database_answers_never_shared(self, default_spec):
        """Two engines sharing one config (hence one cache) over different data.

        Regression test: the scope key must embed the database's identity,
        not just its epoch — both databases below sit at epoch 0, and the
        second must not be served the first one's answer.
        """
        config = EngineConfig(draw_plan="query_keyed", cache=ResultCache(capacity=8))
        issuer = _issuer()
        inside = PointObject.at(1, 5_010.0, 5_010.0)
        elsewhere = PointObject.at(2, 9_900.0, 9_900.0)
        first = ImpreciseQueryEngine(
            point_db=PointDatabase.build([inside, elsewhere]), config=config
        )
        second = ImpreciseQueryEngine(
            point_db=PointDatabase.build([elsewhere]), config=config
        )
        query = RangeQuery.ipq(issuer, default_spec)
        assert first.evaluate(query).oids() == {1}
        assert second.evaluate(query).oids() == set()
        assert config.cache.stats.hits == 0

    def test_cross_config_answers_never_shared(self, small_points, default_spec):
        cache = ResultCache(capacity=32)
        query = RangeQuery.ipq(_gaussian_issuer(), default_spec)
        results = {}
        for samples in (32, 64):
            config = EngineConfig(
                draw_plan="query_keyed",
                cache=cache,
                probability_method="monte_carlo",
                monte_carlo_samples=samples,
            )
            engine = ImpreciseQueryEngine(
                point_db=PointDatabase.build(small_points), config=config
            )
            results[samples] = engine.evaluate(query).probabilities()
        assert cache.stats.hits == 0  # two engines, two fingerprints, no sharing
        assert results[32] != results[64]


class TestShardedCaching:
    def _two_cluster_session(self, workers=1):
        left = [PointObject.at(i, 100.0 + i, 100.0 + (i % 7)) for i in range(40)]
        right = [PointObject.at(100 + i, 9_000.0 + i, 9_000.0 + (i % 7)) for i in range(40)]
        session = Session.from_objects(points=left + right)
        return session.sharded(2, partitioner="median", workers=workers).cached(
            capacity=128
        )

    def test_sharded_hits_and_fine_grained_invalidation(self):
        session = self._two_cluster_session()
        issuer = _issuer(x=150.0, y=150.0, half=50.0)
        query = RangeQuery.ipq(issuer, RangeQuerySpec.square(100.0))
        first = session.evaluate(query)
        assert session.evaluate(query).probabilities() == first.probabilities()
        assert session.stats().cache["hits"] == 1
        # A mutation in the far shard must not evict the cached answer...
        session.move(100, x=9_050.0, y=9_050.0)
        assert session.evaluate(query).probabilities() == first.probabilities()
        assert session.stats().cache["hits"] == 2
        # ...but a mutation in the routed shard must.
        session.move(0, x=120.0, y=120.0)
        session.evaluate(query)
        assert session.stats().cache["hits"] == 2
        epochs = session.stats().epochs["points"]
        assert sorted(epochs.values()) == [1, 1]

    def test_sharded_cached_matches_uncached_sharded(self):
        cached = self._two_cluster_session()
        uncached = Session.from_objects(
            points=[PointObject.at(i, 100.0 + i, 100.0 + (i % 7)) for i in range(40)]
            + [PointObject.at(100 + i, 9_000.0 + i, 9_000.0 + (i % 7)) for i in range(40)]
        ).sharded(2, partitioner="median")
        issuer = _issuer(x=150.0, y=150.0, half=50.0)
        queries = [
            RangeQuery.cipq(issuer, RangeQuerySpec.square(100.0), 0.2),
            NearestNeighborQuery(issuer=issuer, samples=32),
        ] * 2
        expected = [e.probabilities() for e in uncached.evaluate_many(queries)]
        actual = [e.probabilities() for e in cached.evaluate_many(queries)]
        # NN draws differ between plans (per_oid vs query_keyed), so compare
        # like-for-like: the cached session against itself re-run uncached.
        replay = Session.from_objects(
            points=[PointObject.at(i, 100.0 + i, 100.0 + (i % 7)) for i in range(40)]
            + [PointObject.at(100 + i, 9_000.0 + i, 9_000.0 + (i % 7)) for i in range(40)]
        ).sharded(2, partitioner="median")
        replay = Session(
            engine=type(replay.engine)(
                point_db=replay.engine.point_db,
                config=cached.engine.config.with_overrides(cache=None),
                workers=1,
            )
        )
        assert actual == [e.probabilities() for e in replay.evaluate_many(queries)]
        # The range query's closed-form answers also match the per-oid run.
        assert actual[0] == expected[0]


class TestSessionSurface:
    def test_stats_without_cache(self, small_points):
        session = Session.from_objects(points=small_points)
        stats = session.stats()
        assert stats.cache is None
        assert stats.hit_rate == 0.0
        assert stats.epochs == {"points": 0}

    def test_cached_switches_stream_to_query_keyed(self, small_points):
        session = Session.from_objects(points=small_points)
        cached = session.cached(capacity=16)
        assert cached.engine.config.draw_plan == "query_keyed"
        assert cached.engine.config.cache.capacity == 16

    def test_cached_preserves_per_oid_plan(self, small_points):
        session = Session.from_objects(
            points=small_points, config=EngineConfig(draw_plan="per_oid")
        )
        assert session.cached().engine.config.draw_plan == "per_oid"

    def test_cached_shares_live_databases(self, small_points, default_spec):
        session = Session.from_objects(points=small_points)
        cached = session.cached()
        query = RangeQuery.ipq(_issuer(), default_spec)
        cached.evaluate(query)
        session.insert(PointObject.at(999_002, 5_005.0, 5_005.0))  # via the *old* session
        assert 999_002 in cached.evaluate(query).oids()

    def test_experiment_config_cache_knobs(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ValueError, match="cache_capacity"):
            ExperimentConfig(cache_capacity=-1)
        config = ExperimentConfig(cache_capacity=64).engine_config()
        assert config.cache.capacity == 64
        assert config.draw_plan == "query_keyed"
        assert ExperimentConfig().engine_config().cache is None
