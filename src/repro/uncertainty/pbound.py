"""p-bounds of uncertain objects (Section 5.1 / Figure 4 of the paper).

The p-bound of an uncertain object ``Oi`` is a set of four lines
``li(p), ri(p), ti(p), bi(p)`` such that the probability of the object lying
on the *outer* side of each line is exactly ``p``:

* the mass to the left of ``li(p)`` is ``p``,
* the mass to the right of ``ri(p)`` is ``p``,
* the mass above ``ti(p)`` is ``p``,
* the mass below ``bi(p)`` is ``p``.

The 0-bound coincides with the uncertainty region's boundary.  p-bounds are
pre-computed at a handful of probability levels and stored in a
:class:`~repro.uncertainty.catalog.UCatalog`.
"""

from __future__ import annotations
from repro.errors import DistributionError

from dataclasses import dataclass

from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UncertaintyPdf


@dataclass(frozen=True, slots=True)
class PBound:
    """The four p-bound lines of an uncertain object for a fixed ``p``.

    ``left``/``right`` are x-coordinates of the vertical lines ``l(p)``/``r(p)``;
    ``bottom``/``top`` are y-coordinates of the horizontal lines ``b(p)``/``t(p)``.
    """

    p: float
    left: float
    right: float
    bottom: float
    top: float

    @property
    def rect(self) -> Rect:
        """The rectangle enclosed by the four p-bound lines.

        For ``p < 0.5`` this is the inner box whose "frame" (the part of the
        uncertainty region outside the box) carries at least ``p`` of mass on
        each side.  For ``p`` close to 0.5 the box may degenerate.
        """
        return Rect(self.left, self.bottom, self.right, self.top)

    @property
    def is_degenerate(self) -> bool:
        """True when the bound lines cross (left > right or bottom > top)."""
        return self.left > self.right or self.bottom > self.top


def compute_pbound(pdf: UncertaintyPdf, p: float) -> PBound:
    """Compute the p-bound of an uncertainty pdf.

    ``p`` is clamped to ``[0, 0.5]``: for larger values the defining lines of
    opposite sides would cross, and every pruning rule that consults a
    p-bound only ever needs values up to 0.5 (a larger requested value is
    rounded down by the U-catalog lookup, which keeps pruning conservative).
    """
    if not 0.0 <= p <= 1.0:
        raise DistributionError(f"p must lie in [0, 1], got {p}")
    p_eff = min(p, 0.5)
    left = pdf.marginal_quantile_x(p_eff)
    right = pdf.marginal_quantile_x(1.0 - p_eff)
    bottom = pdf.marginal_quantile_y(p_eff)
    top = pdf.marginal_quantile_y(1.0 - p_eff)
    return PBound(p=p, left=left, right=right, bottom=bottom, top=top)


def pbound_rect(pdf: UncertaintyPdf, p: float) -> Rect:
    """Convenience wrapper returning only the rectangle of the p-bound."""
    return compute_pbound(pdf, p).rect
