"""The CI benchmark regression guard's comparison logic."""

from __future__ import annotations

from benchmarks.check_regression import compare, compare_cache, compare_updates


def _result(batch_speedup: float, loop_qps: float) -> dict:
    return {
        "batch_speedup": batch_speedup,
        "per_query_loop": {"queries_per_second": loop_qps},
    }


class TestCompare:
    def test_identical_results_pass(self):
        baseline = _result(1.7, 7_000.0)
        assert compare(baseline, baseline, tolerance=0.30) == []

    def test_degradation_within_tolerance_passes(self):
        assert compare(_result(1.3, 5_200.0), _result(1.7, 7_000.0), tolerance=0.30) == []

    def test_batch_speedup_regression_fails(self):
        failures = compare(_result(1.0, 7_000.0), _result(1.7, 7_000.0), tolerance=0.30)
        assert len(failures) == 1
        assert "batch_speedup" in failures[0]

    def test_loop_throughput_regression_fails(self):
        failures = compare(_result(1.7, 4_000.0), _result(1.7, 7_000.0), tolerance=0.30)
        assert len(failures) == 1
        assert "queries_per_second" in failures[0]

    def test_both_regressions_reported(self):
        failures = compare(_result(0.5, 1_000.0), _result(1.7, 7_000.0), tolerance=0.30)
        assert len(failures) == 2

    def test_improvements_always_pass(self):
        assert compare(_result(3.0, 20_000.0), _result(1.7, 7_000.0), tolerance=0.0) == []


class TestCompareUpdates:
    def test_identical_results_pass(self):
        baseline = {"incremental_speedup": 2.2}
        assert compare_updates(baseline, baseline, tolerance=0.30) == []

    def test_degradation_within_tolerance_passes(self):
        assert (
            compare_updates(
                {"incremental_speedup": 1.6}, {"incremental_speedup": 2.2}, tolerance=0.30
            )
            == []
        )

    def test_incremental_speedup_regression_fails(self):
        failures = compare_updates(
            {"incremental_speedup": 1.0}, {"incremental_speedup": 2.2}, tolerance=0.30
        )
        assert len(failures) == 1
        assert "incremental_speedup" in failures[0]

    def test_improvements_always_pass(self):
        assert (
            compare_updates(
                {"incremental_speedup": 9.0}, {"incremental_speedup": 2.2}, tolerance=0.0
            )
            == []
        )


class TestCompareCache:
    def test_identical_results_pass(self):
        baseline = {"cache_speedup": 16.0}
        assert compare_cache(baseline, baseline, tolerance=0.30) == []

    def test_degradation_within_tolerance_passes(self):
        assert (
            compare_cache({"cache_speedup": 12.0}, {"cache_speedup": 16.0}, tolerance=0.30)
            == []
        )

    def test_cache_speedup_regression_fails(self):
        failures = compare_cache(
            {"cache_speedup": 4.0}, {"cache_speedup": 16.0}, tolerance=0.30
        )
        assert len(failures) == 1
        assert "cache_speedup" in failures[0]

    def test_improvements_always_pass(self):
        assert (
            compare_cache({"cache_speedup": 30.0}, {"cache_speedup": 16.0}, tolerance=0.0)
            == []
        )
