"""Per-query execution plans for the staged pipeline.

Every query the engines accept is first compiled into a :class:`QueryPlan`
— a small, inspectable record of the decisions that used to be scattered
through the engine monolith:

* the **candidate window** (the C-IPQ filter region, the Qp-expanded-query
  or the Minkowski sum) that the index probe or the columnar window test
  will retrieve candidates from,
* the **index probe** choice — whether PTI node-level threshold pruning is
  engaged, and whether the plain window probe may be replaced by a columnar
  snapshot scan on the batch path,
* the **pruner** (:class:`~repro.core.pruning.CIPQPruner` /
  :class:`~repro.core.pruning.CIUQPruner`) owning the expanded-region
  construction, shared across queries that repeat an (issuer, spec,
  threshold) combination,
* the **draw-plan slot** — the token Monte-Carlo draws are keyed by (the
  query's sequence number under ``draw_plan="per_oid"``, a stable
  content-derived fingerprint under ``draw_plan="query_keyed"``, or
  ``None`` for the historical streaming plan), and
* the **cache key** component identifying the query to the shared
  :class:`~repro.core.cache.ResultCache`.

The plan is pure data: building one performs no index I/O and consumes no
randomness, so planners can be called speculatively (e.g. to form a cache
key before deciding whether to execute at all).  The stage runner in
:mod:`repro.core.pipeline` is the only consumer.
"""

from __future__ import annotations
from repro.core.errors import InvalidArgumentError

import hashlib
from dataclasses import dataclass
from typing import Hashable, Literal

from repro.core.expansion import minkowski_expanded_query
from repro.core.pruning import CIPQPruner, CIUQPruner
from repro.core.queries import (
    NearestNeighborQuery,
    Query,
    RangeQuery,
    RangeQuerySpec,
)
from repro.geometry.rect import Rect
from repro.index.pti import ProbabilityThresholdIndex

#: Monte-Carlo sample count used for nearest-neighbour queries that do not
#: specify one (matches :class:`ImpreciseNearestNeighborEngine`'s default).
DEFAULT_NN_SAMPLES = 256

PlanTarget = Literal["points", "uncertain", "nearest"]


def resolved_nn_samples(query: NearestNeighborQuery) -> int:
    """The Monte-Carlo sample count a nearest-neighbour query will run with.

    ``samples=None`` and an explicit ``samples=DEFAULT_NN_SAMPLES`` describe
    the same request, so every identity derived from a query — fingerprint,
    draw token, cache key — must resolve the default first; otherwise the
    two spellings would share a cache entry while drawing different samples.
    """
    return query.samples if query.samples is not None else DEFAULT_NN_SAMPLES


def query_fingerprint(query: Query) -> tuple:
    """A content tuple identifying a query independently of object identity.

    Two queries with equal fingerprints describe the same request: same
    issuer (oid + uncertainty-region bounds), same shape, same threshold,
    same target.  This is the basis of the ``query_keyed`` draw plan — the
    plan under which a repeated query draws the *same* Monte-Carlo samples
    wherever it appears in a workload, which is what makes sampled answers
    cacheable without breaking replay determinism.
    """
    region = query.issuer.region.as_tuple()
    if isinstance(query, NearestNeighborQuery):
        return (
            "nn",
            query.issuer.oid,
            region,
            query.threshold,
            resolved_nn_samples(query),
        )
    return (
        "range",
        query.issuer.oid,
        region,
        query.spec.half_width,
        query.spec.half_height,
        query.threshold,
        query.target,
    )


def query_cache_key(query: Query) -> tuple:
    """The query component of a result-cache key, shared by every engine.

    Issuers are identified by ``id()``; the cache pins the issuer object so
    the id cannot be recycled while an entry lives.  The serial pipeline and
    the parallel executor both derive their keys from this single helper, so
    the key shape cannot drift between execution paths.
    """
    if isinstance(query, NearestNeighborQuery):
        return ("nn", id(query.issuer), query.threshold, resolved_nn_samples(query))
    return ("range", id(query.issuer), query.spec, query.threshold, query.target)


def relevance_window(query: Query) -> Rect | None:
    """The candidate window outside which no mutation can change the answer.

    For range queries this is the full Minkowski sum ``R ⊕ U0`` (the
    paper's Lemma 1 filter) — the *widest* candidate window any
    configuration uses, since the Qp-expanded-query is always a subset of
    it.  An object whose uncertainty region never intersects the window
    has zero qualification probability under every configuration, so a
    mutation whose before/after MBRs both miss the window provably leaves
    the query's answer bit-for-bit unchanged.  Continuous subscriptions
    use exactly this test to skip re-evaluation.

    Nearest-neighbour queries return ``None`` ("everywhere"): removing the
    current winner or inserting a closer object at *any* distance can
    change the win probabilities, so no finite window is complete.
    """
    if isinstance(query, NearestNeighborQuery):
        return None
    return minkowski_expanded_query(query.issuer.region, query.spec)


def query_draw_token(query: Query) -> int:
    """A stable 63-bit draw-plan token derived from the query's content.

    Deterministic across processes and Python hash randomisation (it goes
    through :mod:`hashlib`, not builtin ``hash``), non-negative (a
    ``SeedSequence`` entropy requirement), and equal exactly when
    :func:`query_fingerprint` is equal.  Passed to the per-oid draw helpers
    in place of the query sequence number.
    """
    digest = hashlib.blake2b(
        repr(query_fingerprint(query)).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


def point_pruner(config, issuer, spec, threshold: float) -> CIPQPruner:
    """The (C-)IPQ pruner for one (issuer, spec, threshold) combination."""
    return CIPQPruner(
        issuer,
        spec,
        threshold,
        use_p_expanded_query=config.use_p_expanded_query,
    )


def uncertain_pruner(config, issuer, spec, threshold: float) -> CIUQPruner:
    """The (C-)IUQ pruner for one (issuer, spec, threshold) combination."""
    return CIUQPruner(
        issuer,
        spec,
        threshold,
        strategies=config.ciuq_strategies,
    )


@dataclass
class QueryPlan:
    """The compiled execution plan of one query (see the module docstring)."""

    query: Query
    #: Position of the query in the global workload sequence.
    query_seq: int
    #: Which evaluation core runs the plan.
    target: PlanTarget
    #: Token the Monte-Carlo draws are keyed by (``None`` = streaming plan).
    draw_token: int | None
    #: Pruner owning the expanded regions (``None`` for nearest-neighbour).
    pruner: CIPQPruner | CIUQPruner | None
    #: Candidate window the probe retrieves from (``None`` for nearest).
    window: Rect | None
    #: Engage PTI node-level threshold pruning during the index probe.
    use_pti: bool
    #: The batch path may satisfy the probe with a columnar window test
    #: instead of an index traversal (PTI probes keep the index — its
    #: node-level pruning is the feature under study).
    prefer_columnar: bool
    #: Monte-Carlo sample count (nearest-neighbour plans only).
    samples: int | None
    #: Query component of the result-cache key.  Issuers are identified by
    #: ``id()``; the cache pins the issuer object so the id cannot be
    #: recycled while the entry lives.
    cache_key: Hashable


@dataclass(frozen=True)
class PlanToken:
    """A pickled-tiny stand-in for one routed query, sent to pool workers.

    The parallel executor never ships :class:`Query` objects across the task
    pipe — only this token, a few hundred bytes carrying exactly the fields a
    worker needs to rebuild an equivalent query against its shared-memory
    shard snapshot.  Every identity derived from a query — fingerprint, draw
    token, candidate window, pruner filter region — is a pure function of
    these fields, so the rebuilt query plans and draws bit-for-bit like the
    original:

    * the issuer is rebuilt as ``UncertainObject(oid, pdf)`` (pdfs are small
      picklable dataclasses); when the original issuer carried a U-catalog
      its *levels* are shipped and the catalog is rebuilt with
      :meth:`~repro.uncertainty.region.UncertainObject.with_catalog`, which
      derives identical p-bounds from the pdf — preserving the exact filter
      region a catalog-aware pruner would have chosen in the parent;
    * ``samples`` is stored pre-resolved (see :func:`resolved_nn_samples`),
      so the two spellings of the default cannot diverge.
    """

    kind: Literal["range", "nn"]
    issuer_oid: int
    issuer_pdf: object
    issuer_catalog_levels: tuple[float, ...] | None
    threshold: float
    #: Range fields (``None`` for nearest-neighbour tokens).
    half_width: float | None = None
    half_height: float | None = None
    target: str | None = None
    #: Nearest-neighbour field (``None`` for range tokens).
    samples: int | None = None

    @classmethod
    def from_query(cls, query: Query) -> "PlanToken":
        """Compress one query into its wire token."""
        issuer = query.issuer
        levels = issuer.catalog.levels if issuer.catalog is not None else None
        if isinstance(query, NearestNeighborQuery):
            return cls(
                kind="nn",
                issuer_oid=issuer.oid,
                issuer_pdf=issuer.pdf,
                issuer_catalog_levels=levels,
                threshold=query.threshold,
                samples=resolved_nn_samples(query),
            )
        if not isinstance(query, RangeQuery):
            raise InvalidArgumentError(
                f"cannot tokenise {type(query).__name__!r}; expected a "
                "RangeQuery or a NearestNeighborQuery"
            )
        return cls(
            kind="range",
            issuer_oid=issuer.oid,
            issuer_pdf=issuer.pdf,
            issuer_catalog_levels=levels,
            threshold=query.threshold,
            half_width=query.spec.half_width,
            half_height=query.spec.half_height,
            target=query.target,
        )

    def to_query(self) -> Query:
        """Rebuild an equivalent query (equal fingerprint, equal plan)."""
        from repro.uncertainty.region import UncertainObject

        issuer = UncertainObject(oid=self.issuer_oid, pdf=self.issuer_pdf)
        if self.issuer_catalog_levels is not None:
            issuer = issuer.with_catalog(self.issuer_catalog_levels)
        if self.kind == "nn":
            return NearestNeighborQuery(
                issuer=issuer, threshold=self.threshold, samples=self.samples
            )
        return RangeQuery(
            issuer=issuer,
            spec=RangeQuerySpec(self.half_width, self.half_height),
            threshold=self.threshold,
            target=self.target,
        )


def resolve_draw_token(config, query: Query, query_seq: int) -> int | None:
    """The draw-plan slot for one query: what Monte-Carlo draws are keyed by.

    ``None`` selects the streaming plan (draws consumed from the engine's
    shared advancing generator); the query's sequence number keys the
    position-independent ``per_oid`` plan; a stable content fingerprint keys
    the ``query_keyed`` plan that the result cache relies on.
    """
    if config.draw_plan == "per_oid":
        return query_seq
    if config.draw_plan == "query_keyed":
        return query_draw_token(query)
    return None


def plan_query(
    query: Query,
    query_seq: int,
    config,
    *,
    uncertain_index=None,
    pruner_cache: dict | None = None,
) -> QueryPlan:
    """Compile one query into a :class:`QueryPlan` under ``config``.

    ``uncertain_index`` is consulted only to decide PTI engagement for
    uncertain-target range queries.  ``pruner_cache`` (keyed by issuer
    identity, spec and threshold) lets the batch path reuse pruners across
    queries sharing a filter region; pass ``None`` to always build fresh.
    """
    if isinstance(query, NearestNeighborQuery):
        return QueryPlan(
            query=query,
            query_seq=query_seq,
            target="nearest",
            draw_token=resolve_draw_token(config, query, query_seq),
            pruner=None,
            window=None,
            use_pti=False,
            prefer_columnar=False,
            samples=resolved_nn_samples(query),
            cache_key=query_cache_key(query),
        )
    if not isinstance(query, RangeQuery):
        raise InvalidArgumentError(
            f"cannot plan {type(query).__name__!r}; expected a RangeQuery "
            "or a NearestNeighborQuery"
        )
    issuer, spec, threshold = query.issuer, query.spec, query.threshold
    build = point_pruner if query.target == "points" else uncertain_pruner
    # The target is part of the key: CIPQPruner and CIUQPruner answer the
    # same (issuer, spec, threshold) with different machinery, so a shared
    # cache dict must never alias them across targets.
    cache_key = (id(issuer), spec, threshold, query.target)
    pruner = None
    if pruner_cache is not None:
        pruner = pruner_cache.get(cache_key)
    if pruner is None:
        pruner = build(config, issuer, spec, threshold)
        if pruner_cache is not None:
            pruner_cache[cache_key] = pruner
    if query.target == "points":
        window = pruner.filter_region
        use_pti = False
        prefer_columnar = bool(config.vectorized)
    else:
        use_pti = (
            isinstance(uncertain_index, ProbabilityThresholdIndex)
            and config.use_pti_pruning
            and threshold > 0.0
        )
        window = (
            pruner.qp_expanded_region
            if config.use_p_expanded_query
            else pruner.minkowski_region
        )
        prefer_columnar = bool(config.vectorized) and not use_pti
    return QueryPlan(
        query=query,
        query_seq=query_seq,
        target=query.target,
        draw_token=resolve_draw_token(config, query, query_seq),
        pruner=pruner,
        window=window,
        use_pti=use_pti,
        prefer_columnar=prefer_columnar,
        samples=None,
        cache_key=query_cache_key(query),
    )
