"""A fixed-grid spatial index (a simplified grid file).

The paper mentions the grid file (Nievergelt et al., 1984) alongside the
R-tree as a usable disk index for the expanded-query filtering step.  This
implementation partitions a known data space into a regular grid of buckets;
an object is registered in every bucket its MBR overlaps, and a window query
reads exactly the buckets overlapped by the query rectangle.  Bucket reads
are counted as node accesses so the I/O comparison against the R-tree is
apples-to-apples.
"""

from __future__ import annotations
from repro.errors import MissingItemError, SpatialIndexError

import math
from typing import Any, Iterable

from repro.geometry.rect import Rect
from repro.index.base import extract_mbr, items_match
from repro.index.iostats import IOStatistics


class GridFile:
    """A regular-grid index over a data space that can grow with the data.

    The declared bounds are a starting point, not a contract: inserting an
    MBR that sticks out of the current data space *extends* the space (the
    grid re-registers every item over the enlarged cells) instead of the old
    behaviour of silently clamping the item into edge cells, which left it
    unreachable by in-bounds query windows.
    """

    def __init__(self, bounds: Rect, cells_per_axis: int = 64) -> None:
        if bounds.is_empty or bounds.area == 0.0:
            raise SpatialIndexError("grid bounds must have positive area")
        if cells_per_axis <= 0:
            raise SpatialIndexError("cells_per_axis must be positive")
        self._n = cells_per_axis
        self._stats = IOStatistics()
        #: Master copy of every stored ``(mbr, item)`` pair, in insertion
        #: order — the source of truth the cells are (re)derived from.
        self._entries: list[tuple[Rect, Any]] = []
        self._set_bounds(bounds)

    def _set_bounds(self, bounds: Rect) -> None:
        self._bounds = bounds
        self._cell_w = bounds.width / self._n
        self._cell_h = bounds.height / self._n
        self._cells: list[list[tuple[Rect, Any]]] = [
            [] for _ in range(self._n * self._n)
        ]
        for mbr, item in self._entries:
            self._register(mbr, item)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> IOStatistics:
        """Access counters accumulated by this index."""
        return self._stats

    @property
    def bounds(self) -> Rect:
        """The data space covered by the grid."""
        return self._bounds

    @property
    def cells_per_axis(self) -> int:
        """Grid resolution along each axis."""
        return self._n

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _cell_range(self, rect: Rect) -> tuple[int, int, int, int]:
        """Indices of the grid cells overlapped by ``rect`` (clamped to the grid)."""
        ix_lo = int(math.floor((rect.xmin - self._bounds.xmin) / self._cell_w))
        ix_hi = int(math.floor((rect.xmax - self._bounds.xmin) / self._cell_w))
        iy_lo = int(math.floor((rect.ymin - self._bounds.ymin) / self._cell_h))
        iy_hi = int(math.floor((rect.ymax - self._bounds.ymin) / self._cell_h))
        ix_lo = min(max(ix_lo, 0), self._n - 1)
        ix_hi = min(max(ix_hi, 0), self._n - 1)
        iy_lo = min(max(iy_lo, 0), self._n - 1)
        iy_hi = min(max(iy_hi, 0), self._n - 1)
        return ix_lo, ix_hi, iy_lo, iy_hi

    def _register(self, mbr: Rect, item: Any) -> None:
        """File one pair into every cell its MBR overlaps (bounds must cover it)."""
        ix_lo, ix_hi, iy_lo, iy_hi = self._cell_range(mbr)
        for iy in range(iy_lo, iy_hi + 1):
            for ix in range(ix_lo, ix_hi + 1):
                self._cells[iy * self._n + ix].append((mbr, item))

    def insert(self, mbr: Rect, item: Any) -> None:
        """Register ``item`` in every grid cell its MBR overlaps.

        An MBR outside the current data space extends the space first (all
        items re-register over the enlarged grid), so the item stays
        reachable by any query window that overlaps it.
        """
        if mbr.is_empty:
            raise SpatialIndexError("cannot index an empty rectangle")
        if not self._bounds.contains_rect(mbr):
            self._entries.append((mbr, item))
            self._set_bounds(self._bounds.union_bounds(mbr))
            return
        self._entries.append((mbr, item))
        self._register(mbr, item)

    def delete(self, mbr: Rect, item: Any) -> None:
        """Remove one stored item from the master list and every cell holding it."""
        for position, (stored_mbr, stored) in enumerate(self._entries):
            if stored_mbr == mbr and items_match(stored, item):
                del self._entries[position]
                break
        else:
            raise MissingItemError(f"item with MBR {mbr.as_tuple()} is not stored in this grid")
        ix_lo, ix_hi, iy_lo, iy_hi = self._cell_range(mbr)
        for iy in range(iy_lo, iy_hi + 1):
            for ix in range(ix_lo, ix_hi + 1):
                bucket = self._cells[iy * self._n + ix]
                for slot, (stored_mbr, stored) in enumerate(bucket):
                    if stored_mbr == mbr and items_match(stored, item):
                        del bucket[slot]
                        break

    def update(
        self, old_mbr: Rect, new_mbr: Rect, item: Any, *, replacement: Any = None
    ) -> None:
        """Move one stored item to ``new_mbr`` (optionally replacing the payload)."""
        self.delete(old_mbr, item)
        self.insert(new_mbr, replacement if replacement is not None else item)

    @classmethod
    def bulk_load(
        cls, items: Iterable[Any], *, bounds: Rect, cells_per_axis: int = 64
    ) -> "GridFile":
        """Build a grid file over items exposing an ``mbr`` attribute."""
        materialised = list(items)
        if not materialised:
            raise SpatialIndexError("cannot index an empty collection")
        grid = cls(bounds, cells_per_axis=cells_per_axis)
        for item in materialised:
            grid.insert(extract_mbr(item), item)
        return grid

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def range_search(self, query: Rect) -> list[Any]:
        """Return every stored item whose MBR intersects ``query``."""
        results: list[Any] = []
        if query.is_empty or not self._entries:
            return results
        window = query.intersect(self._bounds)
        if window.is_empty:
            # The bounds always cover every stored MBR (inserts extend them),
            # so a query disjoint from the bounds cannot match anything.
            return results
        seen: set[int] = set()
        ix_lo, ix_hi, iy_lo, iy_hi = self._cell_range(window)
        for iy in range(iy_lo, iy_hi + 1):
            for ix in range(ix_lo, ix_hi + 1):
                bucket = self._cells[iy * self._n + ix]
                self._stats.record_node(is_leaf=True)
                self._stats.record_entries(len(bucket))
                for mbr, item in bucket:
                    if id(item) in seen:
                        continue
                    if mbr.overlaps(query):
                        seen.add(id(item))
                        results.append(item)
        self._stats.record_results(len(results))
        return results
