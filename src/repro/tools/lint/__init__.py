"""``repro.tools.lint`` — AST-based invariant analyzer for this codebase.

Run as ``python -m repro.tools.lint [paths]``.  Every rule guards an
invariant a past PR shipped a real bug against; see
:mod:`repro.tools.lint.rules` for the catalogue and the README's
"Static analysis & development checks" section for the prose version.
"""

from repro.tools.lint.engine import (
    Diagnostic,
    Module,
    Rule,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    run_cross_checks,
)

__all__ = [
    "Diagnostic",
    "Module",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "run_cross_checks",
]
