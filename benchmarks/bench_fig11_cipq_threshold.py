"""Figure 11 — C-IPQ: Minkowski-sum filter vs p-expanded-query, vs threshold Qp.

Expected shape: the two series coincide at Qp = 0 and the p-expanded-query
becomes progressively cheaper as Qp grows (the paper reports roughly a 3×
gain at Qp = 0.6) because its window — and therefore the candidate set —
shrinks with the threshold while the Minkowski window does not.
"""

import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import EngineConfig, ImpreciseQueryEngine

from benchmarks.conftest import issuer_for

THRESHOLDS = [0.0, 0.2, 0.4, 0.6, 0.8]


@pytest.mark.parametrize("qp", THRESHOLDS)
def test_cipq_minkowski_sum(benchmark, point_db, qp):
    """Baseline: candidates filtered with the Minkowski sum only."""
    engine = ImpreciseQueryEngine(
        point_db=point_db, config=EngineConfig(use_p_expanded_query=False)
    )
    issuer, spec = issuer_for(250.0, threshold=qp)
    result = benchmark(lambda: engine.evaluate(RangeQuery.cipq(issuer, spec, qp)))
    assert all(answer.probability >= qp for answer in result)


@pytest.mark.parametrize("qp", THRESHOLDS)
def test_cipq_p_expanded_query(benchmark, point_db, qp):
    """Paper's method: candidates filtered with the Qp-expanded-query."""
    engine = ImpreciseQueryEngine(
        point_db=point_db, config=EngineConfig(use_p_expanded_query=True)
    )
    issuer, spec = issuer_for(250.0, threshold=qp)
    result = benchmark(lambda: engine.evaluate(RangeQuery.cipq(issuer, spec, qp)))
    assert all(answer.probability >= qp for answer in result)
