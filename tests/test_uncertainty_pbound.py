"""Unit tests for p-bounds (Section 5.1 / Figure 4 of the paper)."""

import pytest

from repro.geometry.rect import Rect
from repro.uncertainty.pbound import PBound, compute_pbound, pbound_rect
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf

REGION = Rect(0.0, 0.0, 100.0, 200.0)


class TestUniformPBounds:
    def test_zero_bound_is_region_boundary(self):
        bound = compute_pbound(UniformPdf(REGION), 0.0)
        assert bound.rect == REGION

    def test_uniform_bounds_are_linear(self):
        bound = compute_pbound(UniformPdf(REGION), 0.2)
        assert bound.left == pytest.approx(20.0)
        assert bound.right == pytest.approx(80.0)
        assert bound.bottom == pytest.approx(40.0)
        assert bound.top == pytest.approx(160.0)

    def test_half_bound_degenerates_to_center_lines(self):
        bound = compute_pbound(UniformPdf(REGION), 0.5)
        assert bound.left == pytest.approx(50.0)
        assert bound.right == pytest.approx(50.0)
        assert bound.bottom == pytest.approx(100.0)
        assert bound.top == pytest.approx(100.0)
        assert not bound.is_degenerate

    def test_values_above_half_are_clamped(self):
        bound_high = compute_pbound(UniformPdf(REGION), 0.9)
        bound_half = compute_pbound(UniformPdf(REGION), 0.5)
        assert bound_high.rect == bound_half.rect

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            compute_pbound(UniformPdf(REGION), 1.5)

    def test_pbound_rect_wrapper(self):
        assert pbound_rect(UniformPdf(REGION), 0.1) == compute_pbound(UniformPdf(REGION), 0.1).rect


class TestPBoundSemantics:
    """The defining property: mass outside each bound line equals p."""

    @pytest.mark.parametrize("p", [0.05, 0.1, 0.25, 0.4])
    def test_mass_left_of_left_bound(self, p):
        pdf = UniformPdf(REGION)
        bound = compute_pbound(pdf, p)
        left_strip = Rect(REGION.xmin, REGION.ymin, bound.left, REGION.ymax)
        assert pdf.probability_in_rect(left_strip) == pytest.approx(p)

    @pytest.mark.parametrize("p", [0.05, 0.1, 0.25, 0.4])
    def test_mass_right_of_right_bound(self, p):
        pdf = UniformPdf(REGION)
        bound = compute_pbound(pdf, p)
        right_strip = Rect(bound.right, REGION.ymin, REGION.xmax, REGION.ymax)
        assert pdf.probability_in_rect(right_strip) == pytest.approx(p)

    @pytest.mark.parametrize("p", [0.1, 0.3])
    def test_mass_below_bottom_bound_gaussian(self, p):
        pdf = TruncatedGaussianPdf(REGION)
        bound = compute_pbound(pdf, p)
        bottom_strip = Rect(REGION.xmin, REGION.ymin, REGION.xmax, bound.bottom)
        assert pdf.probability_in_rect(bottom_strip) == pytest.approx(p, abs=1e-6)

    @pytest.mark.parametrize("p", [0.1, 0.3])
    def test_mass_above_top_bound_gaussian(self, p):
        pdf = TruncatedGaussianPdf(REGION)
        bound = compute_pbound(pdf, p)
        top_strip = Rect(REGION.xmin, bound.top, REGION.xmax, REGION.ymax)
        assert pdf.probability_in_rect(top_strip) == pytest.approx(p, abs=1e-6)


class TestMonotonicity:
    def test_bounds_shrink_as_p_grows(self):
        pdf = UniformPdf(REGION)
        previous = compute_pbound(pdf, 0.0).rect
        for p in (0.1, 0.2, 0.3, 0.4, 0.5):
            current = compute_pbound(pdf, p).rect
            assert previous.contains_rect(current)
            previous = current

    def test_gaussian_bounds_nested_in_uniform_region(self):
        pdf = TruncatedGaussianPdf(REGION)
        for p in (0.1, 0.2, 0.4):
            assert REGION.contains_rect(compute_pbound(pdf, p).rect)


class TestPBoundDataclass:
    def test_rect_property(self):
        bound = PBound(p=0.1, left=1.0, right=9.0, bottom=2.0, top=8.0)
        assert bound.rect == Rect(1.0, 2.0, 9.0, 8.0)

    def test_degenerate_flag(self):
        crossed = PBound(p=0.6, left=9.0, right=1.0, bottom=2.0, top=8.0)
        assert crossed.is_degenerate
