"""Parent-side connection pool over a fleet of shard daemons.

:class:`RemoteShardPool` owns one persistent TCP connection per shard
address (lazily opened, ``TCP_NODELAY``) and speaks the framed protocol of
:mod:`repro.rpc.wire`.  Scatter is **pipelined**: every routed shard batch
is written before any reply is read, so one round of scatter-gather costs
one round trip regardless of how many shards participate — the daemon
answers frames in request order, which makes replies trivially matchable
without request ids.

The pool also keeps the authoritative **epoch map**: every ``load`` and
``update`` reply records the daemon-reported epoch per ``(kind, sid)``.
Query replies carry the answering shard's epoch too, and a mismatch with
the recorded value raises :class:`~repro.errors.EngineStateError` — a
remote shard that drifted from the parent's copy can never serve a silently
stale answer.

Error replies decode through the serving layer's error codec and re-raise
as the same typed exception classes the in-process engines raise.

Byte counters (``query_bytes_sent`` / ``query_bytes_received``) account the
scatter hot path only — exact on-the-wire frame sizes, used by
``benchmarks/bench_rpc.py`` for the ``rpc_bytes_per_query`` metric.
"""

from __future__ import annotations

import socket
from typing import Mapping, Sequence

import numpy as np

from repro.core.engine import EngineConfig
from repro.core.errors import EngineStateError
from repro.core.wire import require
from repro.rpc import wire
from repro.serve.framing import encode_frame, read_sized_frame_from_socket
from repro.serve.schemas import error_from_dict

#: One routed shard batch: ``(kind, sid, range_items, nn_items)`` where each
#: item is a ``(position, seq, PlanToken)`` triple.
ShardTask = tuple[str, int, list, list]

_CONNECT_TIMEOUT_SECONDS = 30.0


class RemoteShardPool:
    """Persistent pipelined connections to one daemon per shard id."""

    def __init__(self, addrs: Sequence[tuple[str, int]]) -> None:
        if not addrs:
            raise EngineStateError("a remote shard pool needs at least one address")
        self._addrs = [(str(host), int(port)) for host, port in addrs]
        self._sockets: dict[int, socket.socket] = {}
        self._epochs: dict[tuple[str, int], int] = {}
        self.query_bytes_sent = 0
        self.query_bytes_received = 0

    @property
    def addrs(self) -> list[tuple[str, int]]:
        return list(self._addrs)

    # ------------------------------------------------------------------ #
    # Epoch map
    # ------------------------------------------------------------------ #
    def loaded(self, kind: str, sid: int) -> bool:
        """Whether this pool has shipped ``(kind, sid)`` to its daemon."""
        return (kind, sid) in self._epochs

    def epoch(self, kind: str, sid: int) -> int:
        """The daemon-reported epoch of one loaded shard."""
        epoch = self._epochs.get((kind, sid))
        if epoch is None:
            raise EngineStateError(f"shard ({kind!r}, {sid}) is not loaded remotely")
        return epoch

    def forget(self, kind: str, sid: int) -> None:
        """Drop the epoch entry of a shard that was drained locally."""
        self._epochs.pop((kind, sid), None)

    def reset_query_accounting(self) -> None:
        self.query_bytes_sent = 0
        self.query_bytes_received = 0

    # ------------------------------------------------------------------ #
    # Transport primitives
    # ------------------------------------------------------------------ #
    def _socket(self, sid: int) -> socket.socket:
        sock = self._sockets.get(sid)
        if sock is not None:
            return sock
        if not 0 <= sid < len(self._addrs):
            raise EngineStateError(
                f"shard id {sid} has no address (pool spans {len(self._addrs)})"
            )
        sock = socket.create_connection(
            self._addrs[sid], timeout=_CONNECT_TIMEOUT_SECONDS
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sockets[sid] = sock
        return sock

    def _send(self, sid: int, header: dict, arrays: dict | None = None) -> int:
        frame = encode_frame(header, arrays or {})
        self._socket(sid).sendall(frame)
        return len(frame)

    def _read_reply(
        self, sid: int
    ) -> tuple[str, Mapping, dict[str, np.ndarray], int, Exception | None]:
        """One reply frame: ``(op, header, arrays, wire_bytes, error)``.

        A decoded ``error`` reply is *returned*, not raised, so pipelined
        readers can drain a scatter round before surfacing the failure.
        """
        sized = read_sized_frame_from_socket(self._socket(sid))
        if sized is None:
            raise EngineStateError(
                f"shardd at {self._addrs[sid]} closed the connection mid-reply"
            )
        header, arrays, nbytes = sized
        op, header = wire.check_header(header)
        if op == "error":
            return op, header, arrays, nbytes, error_from_dict(
                require(header, wire.RPC_SCHEMA, "error")
            )
        return op, header, arrays, nbytes, None

    def _call(
        self, sid: int, header: dict
    ) -> tuple[str, Mapping, dict[str, np.ndarray]]:
        """One unpipelined request/reply exchange, raising typed errors."""
        self._send(sid, header)
        op, reply, arrays, _, error = self._read_reply(sid)
        if error is not None:
            raise error
        return op, reply, arrays

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def load(
        self,
        kind: str,
        sid: int,
        index_kind: str,
        catalog_levels: tuple[float, ...] | None,
        config: EngineConfig,
        objects: list,
    ) -> str:
        """Ship one shard's snapshot; records its epoch; returns the digest."""
        _, reply, _ = self._call(
            sid, wire.load_header(kind, sid, index_kind, catalog_levels, config, objects)
        )
        self._epochs[(kind, sid)] = int(require(reply, wire.RPC_SCHEMA, "epoch"))
        return str(require(reply, wire.RPC_SCHEMA, "config_digest"))

    def configure(self, kind: str, sid: int, config: EngineConfig) -> str:
        """Register another engine config with a loaded shard."""
        _, reply, _ = self._call(sid, wire.configure_header(kind, sid, config))
        return str(require(reply, wire.RPC_SCHEMA, "config_digest"))

    def update(self, kind: str, sid: int, ops: list) -> int:
        """Apply mutation ops on the owning shard; returns its new epoch."""
        _, reply, _ = self._call(sid, wire.update_header(kind, sid, ops))
        epoch = int(require(reply, wire.RPC_SCHEMA, "epoch"))
        self._epochs[(kind, sid)] = epoch
        return epoch

    # ------------------------------------------------------------------ #
    # Query hot path
    # ------------------------------------------------------------------ #
    def scatter(
        self, tasks: Sequence[ShardTask], config_digest: str
    ) -> list[tuple[Mapping, dict[str, np.ndarray]]]:
        """Pipelined scatter-gather of routed plan-token batches.

        Every task's query frame is written before any reply is read; each
        connection then yields its replies in send order.  Returns replies
        in task order.  Reply epochs are checked against the recorded epoch
        map — drift raises :class:`EngineStateError`.
        """
        send_order: dict[int, list[int]] = {}
        for index, (kind, sid, range_items, nn_items) in enumerate(tasks):
            self.query_bytes_sent += self._send(
                sid, wire.query_header(kind, sid, config_digest, range_items, nn_items)
            )
            send_order.setdefault(sid, []).append(index)
        results: list[tuple[Mapping, dict[str, np.ndarray]] | None]
        results = [None] * len(tasks)
        first_error: Exception | None = None
        for sid, indices in send_order.items():
            for index in indices:
                _, reply, arrays, nbytes, error = self._read_reply(sid)
                self.query_bytes_received += nbytes
                if error is not None:
                    first_error = first_error or error
                    continue
                kind = tasks[index][0]
                shard_epoch = int(require(reply, wire.RPC_SCHEMA, "epoch"))
                expected = self._epochs.get((kind, tasks[index][1]))
                if expected is None or shard_epoch != expected:
                    first_error = first_error or EngineStateError(
                        f"shard ({kind!r}, {tasks[index][1]}) answered at epoch "
                        f"{shard_epoch} but the pool recorded {expected}"
                    )
                    continue
                results[index] = (reply, arrays)
        if first_error is not None:
            raise first_error
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Ask every daemon to stop (best effort), then drop the sockets."""
        for sid in range(len(self._addrs)):
            try:
                self._call(sid, wire.header("shutdown"))
            except (ConnectionError, OSError, EngineStateError):
                pass  # already gone: shutdown is idempotent
        self.close()

    def close(self) -> None:
        """Close every connection; the daemons themselves keep running."""
        for sock in self._sockets.values():
            try:
                sock.close()
            except OSError:
                pass
        self._sockets = {}

    def __enter__(self) -> "RemoteShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
