"""Query workload generation.

The paper's experiments draw 500 queries per data point: "the center point of
``U0`` is uniformly distributed in the data space", both ``U0`` and the range
query are squares, and the issuer's pdf is uniform (a truncated Gaussian in
the non-uniform experiment).  :class:`QueryWorkload` reproduces exactly that
procedure and is deterministic for a given seed.
"""

from __future__ import annotations
from repro.errors import DatasetError

from dataclasses import dataclass
from typing import Iterator, Literal, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.queries import ImpreciseRangeQuery, RangeQuerySpec
from repro.datasets.tiger import DATA_SPACE
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS, UCatalog
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import UncertainObject

IssuerPdfKind = Literal["uniform", "gaussian"]


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible stream of imprecise range queries.

    Parameters mirror Table 2 of the paper: ``issuer_half_size`` is ``u`` (the
    half side-length of the issuer's square uncertainty region, default 250),
    ``range_half_size`` is ``w`` (default 500) and ``threshold`` is ``Qp``
    (default 0).
    """

    issuer_half_size: float = 250.0
    range_half_size: float = 500.0
    threshold: float = 0.0
    issuer_pdf: IssuerPdfKind = "uniform"
    bounds: Rect = DATA_SPACE
    catalog_levels: Sequence[float] | None = DEFAULT_CATALOG_LEVELS
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.issuer_half_size <= 0:
            raise DatasetError("issuer_half_size must be positive")
        if self.range_half_size < 0:
            raise DatasetError("range_half_size must be non-negative")
        if not 0.0 <= self.threshold <= 1.0:
            raise DatasetError("threshold must lie in [0, 1]")
        if self.issuer_pdf not in ("uniform", "gaussian"):
            raise DatasetError(f"unknown issuer pdf kind: {self.issuer_pdf!r}")

    @property
    def spec(self) -> RangeQuerySpec:
        """The range-query shape shared by all queries in the workload."""
        return RangeQuerySpec.square(self.range_half_size)

    def _issuer_region(self, center: Point) -> Rect:
        return Rect.from_center(center, self.issuer_half_size, self.issuer_half_size)

    def make_issuer(self, center: Point, oid: int = 0) -> UncertainObject:
        """Build one query issuer centred at ``center``."""
        region = self._issuer_region(center)
        if self.issuer_pdf == "uniform":
            pdf: UniformPdf | TruncatedGaussianPdf = UniformPdf(region)
        else:
            pdf = TruncatedGaussianPdf(region)
        catalog = (
            UCatalog.build(pdf, self.catalog_levels)
            if self.catalog_levels is not None
            else None
        )
        return UncertainObject(oid=oid, pdf=pdf, catalog=catalog)

    def issuers(self, count: int) -> Iterator[UncertainObject]:
        """Yield ``count`` issuers with centres uniform over the data space."""
        if count <= 0:
            raise DatasetError("count must be positive")
        rng = np.random.default_rng(self.seed)
        # Keep the whole uncertainty region inside the data space so that
        # issuer pdfs never have to be clipped.
        margin = self.issuer_half_size
        xs = rng.uniform(self.bounds.xmin + margin, self.bounds.xmax - margin, size=count)
        ys = rng.uniform(self.bounds.ymin + margin, self.bounds.ymax - margin, size=count)
        for oid, (x, y) in enumerate(zip(xs, ys)):
            yield self.make_issuer(Point(float(x), float(y)), oid=oid)

    def queries(self, count: int) -> Iterator[ImpreciseRangeQuery]:
        """Yield ``count`` fully specified imprecise range queries."""
        spec = self.spec
        for issuer in self.issuers(count):
            yield ImpreciseRangeQuery(issuer=issuer, spec=spec, threshold=self.threshold)

    def with_parameters(self, **kwargs) -> "QueryWorkload":
        """Return a copy with some parameters replaced (for sweeps)."""
        from dataclasses import replace

        return replace(self, **kwargs)


@dataclass(frozen=True)
class UpdateWorkload:
    """A reproducible stream of live mutations over a point collection.

    Models the paper's motivating scenario — objects that keep *moving*
    between location reports — as an :class:`~repro.core.updates.UpdateBatch`
    of moves, arrivals (inserts) and departures (deletes) drawn uniformly
    over the data space.  Deterministic for a given seed, so update-parity
    tests and benchmarks replay the identical stream.

    ``move_fraction`` + ``insert_fraction`` must not exceed 1; the remainder
    of the stream is deletions.  The generator never deletes the last live
    object and never reuses an oid, so every generated stream is valid
    against any database seeded with the initial oids.
    """

    bounds: Rect = DATA_SPACE
    move_fraction: float = 0.8
    insert_fraction: float = 0.1
    seed: int = 54321

    def __post_init__(self) -> None:
        if not 0.0 <= self.move_fraction <= 1.0:
            raise DatasetError("move_fraction must lie in [0, 1]")
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise DatasetError("insert_fraction must lie in [0, 1]")
        if self.move_fraction + self.insert_fraction > 1.0:
            raise DatasetError("move_fraction + insert_fraction must not exceed 1")

    def point_updates(self, initial_oids: Sequence[int], count: int):
        """An :class:`UpdateBatch` of ``count`` mutations over point objects.

        ``initial_oids`` are the oids live before the stream starts; fresh
        inserts take oids above the largest seen.
        """
        from repro.core.updates import UpdateBatch
        from repro.uncertainty.region import PointObject

        if count <= 0:
            raise DatasetError("count must be positive")
        live = list(initial_oids)
        if not live:
            raise DatasetError("the update stream needs at least one live oid")
        rng = np.random.default_rng(self.seed)
        next_oid = max(live) + 1
        batch = UpdateBatch()
        for _ in range(count):
            draw = float(rng.uniform())
            x = float(rng.uniform(self.bounds.xmin, self.bounds.xmax))
            y = float(rng.uniform(self.bounds.ymin, self.bounds.ymax))
            if draw < self.move_fraction:
                oid = live[int(rng.integers(0, len(live)))]
                batch.move(oid, x=x, y=y)
            elif draw < self.move_fraction + self.insert_fraction or len(live) == 1:
                batch.insert(PointObject.at(next_oid, x, y))
                live.append(next_oid)
                next_oid += 1
            else:
                position = int(rng.integers(0, len(live)))
                oid = live[position]
                live[position] = live[-1]
                live.pop()
                batch.delete(oid, target="points")
        return batch
