"""Benchmark: micro-batched serving vs window=0 per-request dispatch.

Closed-loop concurrent clients drive one :class:`repro.serve.QueryServer`
in-process through ``submit_query`` (no TCP, so the numbers measure the
dispatch machinery, not socket jitter).  Each client submits its next query
the moment the previous answer arrives, so with N clients up to N requests
are pending at once — the coalescing window drains them into single
``evaluate_many`` waves, while the ``window=0`` baseline dispatches every
request alone.  Every answer produced by the batched run is asserted
bitwise-identical to evaluating the same query directly on an unserved
session before the result is accepted.

Results are written to ``BENCH_serving.json``; ``check_regression.py``
guards the ``serving_batch_speedup`` ratio.

Run with::

    PYTHONPATH=src python benchmarks/bench_serving.py

Environment knobs: ``REPRO_BENCH_SCALE`` (dataset scale, default 0.02),
``REPRO_BENCH_SERVE_CLIENTS`` (concurrent clients, default 8),
``REPRO_BENCH_SERVE_QUERIES`` (queries per client, default 40) and
``REPRO_BENCH_REPEATS`` (timing repetitions, default 3).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

from repro.core.queries import Evaluation, RangeQuery
from repro.core.session import Session
from repro.datasets.tiger import california_points
from repro.datasets.workload import QueryWorkload
from repro.serve import QueryServer

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _build_workload(clients: int, per_client: int, scale: float):
    """The served session, one query list per client, and parity references."""
    session = Session.from_objects(points=california_points(scale=scale))
    workload = QueryWorkload(issuer_half_size=250.0, range_half_size=500.0, seed=8707)
    spec = workload.spec
    issuers = workload.issuers(clients * per_client)
    queries = [RangeQuery.ipq(issuer, spec) for issuer in issuers]
    by_client = [queries[i * per_client : (i + 1) * per_client] for i in range(clients)]
    # The parity oracle evaluates on a *separate* session over the same data
    # under the draw plan the server forces, so "bitwise identical" means
    # identical across sessions, not merely within one.
    oracle = session.with_config(draw_plan="query_keyed")
    references = [oracle.evaluate(query) for query in queries]
    by_query = {id(q): ref for q, ref in zip(queries, references)}
    return session, by_client, by_query


def _run_mode(
    session: Session,
    by_client: list[list[RangeQuery]],
    *,
    window: float,
    max_wave: int,
) -> tuple[float, list[tuple[RangeQuery, Evaluation]], dict]:
    """Drive one closed-loop run; returns (seconds, answers, serving stats)."""

    async def client_loop(server, queries, sink):
        for query in queries:
            sink.append((query, await server.submit_query(query)))

    async def run():
        server = QueryServer(
            session, window=window, max_pending=4096, max_wave=max_wave
        )
        async with server:
            sinks: list[list[tuple[RangeQuery, Evaluation]]] = [
                [] for _ in by_client
            ]
            started = time.perf_counter()
            await asyncio.gather(
                *[
                    client_loop(server, queries, sink)
                    for queries, sink in zip(by_client, sinks)
                ]
            )
            elapsed = time.perf_counter() - started
            stats = (await server.stats())["serving"]
        return elapsed, [pair for sink in sinks for pair in sink], stats

    return asyncio.run(run())


def _assert_parity(answers, by_query) -> None:
    for query, evaluation in answers:
        reference = by_query[id(query)]
        assert evaluation.probabilities() == reference.probabilities(), (
            f"served answer diverged from direct evaluate for {query.kind} "
            f"issuer region {query.issuer_region}"
        )


def main() -> dict:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
    clients = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "8"))
    per_client = int(os.environ.get("REPRO_BENCH_SERVE_QUERIES", "40"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    window_ms = float(os.environ.get("REPRO_BENCH_SERVE_WINDOW_MS", "2.0"))

    session, by_client, by_query = _build_workload(clients, per_client, scale)
    total = clients * per_client

    modes = {
        "per_request": {"window": 0.0, "max_wave": 1},
        "batched": {"window": window_ms / 1000.0, "max_wave": clients},
    }

    # Warm-up run per mode (imports, index caches), then interleaved
    # best-of-repeats so drift does not favour the later mode.
    best: dict[str, float] = {name: float("inf") for name in modes}
    wave_stats: dict[str, dict] = {}
    for name, knobs in modes.items():
        _run_mode(session, by_client, **knobs)
    for _ in range(repeats):
        for name, knobs in modes.items():
            seconds, answers, stats = _run_mode(session, by_client, **knobs)
            _assert_parity(answers, by_query)
            if seconds < best[name]:
                best[name] = seconds
                wave_stats[name] = stats

    per_request = best["per_request"]
    batched = best["batched"]
    report = {
        "benchmark": "serving",
        "dataset_scale": scale,
        "clients": clients,
        "queries_per_client": per_client,
        "total_queries": total,
        "repeats": repeats,
        "window_ms": window_ms,
        "per_request": {
            "seconds": per_request,
            "queries_per_second": total / per_request,
            "waves": wave_stats["per_request"]["waves"],
            "largest_wave": wave_stats["per_request"]["largest_wave"],
        },
        "batched": {
            "seconds": batched,
            "queries_per_second": total / batched,
            "waves": wave_stats["batched"]["waves"],
            "largest_wave": wave_stats["batched"]["largest_wave"],
        },
        "serving_batch_speedup": per_request / batched,
        "parity": "every served answer bitwise-identical to direct evaluate",
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {OUTPUT_PATH}")
    return report


if __name__ == "__main__":
    main()
