"""Continuous queries: standing subscriptions with incremental delta evaluation.

The paper's location-based-service setting is naturally streaming: a client
registers "which cabs are probably within 500 m of me?" *once* and wants
answer **deltas** as objects move, not a fresh batch query per tick.  This
module turns the primitives of the live-update and caching layers into that
subscription surface:

* a :class:`SubscriptionRegistry` holds standing
  :class:`~repro.core.queries.RangeQuery` /
  :class:`~repro.core.queries.NearestNeighborQuery` subscriptions and
  observes the underlying databases through the
  :class:`~repro.core.updates.MutationObservable` hook;
* after each applied ``UpdateOp``/``UpdateBatch`` it decides, per
  subscription, whether the mutations *can* have changed the answer —
  never re-evaluating the whole registry:

  - **sharded databases**: a subscription's answer is a pure function of
    the shards its query routes to and their contents, so the registry
    compares the :meth:`~repro.core.sharding.ShardedDatabase.epoch_scope`
    token of the currently routed shards against the token recorded at the
    last evaluation.  Equal tokens ⇒ provably identical answer (the same
    invariant the parallel engine's result-cache key rests on) ⇒ skip.
  - **single databases**: a mutation whose touched region misses the
    subscription's candidate window — the Minkowski sum from
    :func:`~repro.core.plan.relevance_window`, via
    :meth:`~repro.core.pipeline.QueryPipeline.affected_by` — provably
    cannot change a range answer (Lemma 1: objects outside the window have
    zero qualification probability) ⇒ skip.  Nearest-neighbour answers
    have no complete finite window and re-evaluate on any point mutation.

* affected subscriptions re-evaluate through the ordinary engine machinery
  (the staged :class:`~repro.core.pipeline.QueryPipeline`, or the parallel
  executor for sharded databases), the fresh answer is diffed against the
  retained one, and ordered :class:`AnswerDelta` events (``JOIN`` /
  ``LEAVE`` / ``SCORE_CHANGE``) are queued for :meth:`Subscription.poll`.

Bitwise safety rides on the ``query_keyed`` draw plan: the registry's
evaluator always runs with ``draw_plan="query_keyed"``, whose Monte-Carlo
draws are keyed by query *content* rather than stream position, so a
subscription's maintained answer is — at every instant — bit-for-bit equal
to a cold ``evaluate`` of the same query under the same configuration.
Replaying the emitted delta stream on top of the initial answer
reconstructs the maintained answer exactly (see :func:`replay_deltas`).
"""

from __future__ import annotations
from repro.core.errors import ConfigurationError, EngineStateError, InvalidArgumentError, MissingItemError

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Hashable, Iterable

from repro.core.parallel import ParallelEngine
from repro.core.pipeline import QueryPipeline
from repro.core.plan import relevance_window
from repro.core.queries import NearestNeighborQuery, Query, RangeQuery
from repro.core.sharding import ShardedDatabase
from repro.core.updates import UpdateEvent, UpdateOp
from repro.geometry.rect import Rect


class DeltaKind(str, Enum):
    """What happened to one object of a subscription's answer set."""

    JOIN = "join"
    LEAVE = "leave"
    SCORE_CHANGE = "score_change"


@dataclass(frozen=True)
class AnswerDelta:
    """One ordered change to a subscription's maintained answer.

    ``probability`` is the new qualification probability (``None`` for a
    ``LEAVE``), ``previous_probability`` the retained one (``None`` for a
    ``JOIN``).  ``op`` echoes the last applied
    :class:`~repro.core.updates.UpdateOp` that could have affected the
    subscription — the *trigger* — and ``epoch`` pins the database state
    the new answer was computed against (the database epoch for a single
    database, the routed-shard scope token for a sharded one).

    ``sequence`` numbers are strictly increasing across the whole
    registry, so interleaved deltas of many subscriptions can be merged
    back into one totally ordered stream.
    """

    subscription_id: int
    kind: DeltaKind
    oid: int
    probability: float | None
    previous_probability: float | None
    op: UpdateOp | None
    epoch: Hashable
    sequence: int


def replay_deltas(
    initial: dict[int, float], deltas: Iterable[AnswerDelta]
) -> dict[int, float]:
    """Reconstruct an answer by replaying a delta stream over ``initial``.

    The inverse of the registry's diffing: applying every emitted delta of
    one subscription (in ``sequence`` order) to its initial answer yields
    exactly the maintained answer — the parity contract the continuous
    test-suite asserts bitwise.
    """
    answer = dict(initial)
    for delta in deltas:
        if delta.kind is DeltaKind.LEAVE:
            answer.pop(delta.oid, None)
        else:
            answer[delta.oid] = delta.probability
    return answer


class Subscription:
    """One standing query: its retained answer plus the undrained deltas.

    Handles are created by :meth:`SubscriptionRegistry.subscribe` (or
    ``Session.subscribe``); the initial answer — the base a replayed delta
    stream starts from — is evaluated at subscribe time and available via
    :meth:`initial_answer`.
    """

    def __init__(
        self,
        registry: "SubscriptionRegistry",
        subscription_id: int,
        query: Query,
        target: str,
        window: Rect | None,
        answer: dict[int, float],
        scope: Hashable,
    ) -> None:
        self._registry = registry
        self.id = subscription_id
        self.query = query
        #: Database kind the query reads ("points" or "uncertain").
        self.target = target
        #: Candidate window from :func:`~repro.core.plan.relevance_window`
        #: (``None`` for nearest-neighbour queries: the whole space).
        self.window = window
        self.active = True
        self._answer = dict(answer)
        self._initial = dict(answer)
        self._scope = scope
        self._pending: list[AnswerDelta] = []

    def answer(self) -> dict[int, float]:
        """The maintained ``{oid: probability}`` answer, updates applied."""
        if self.active:
            self._registry.pump()
        return dict(self._answer)

    def initial_answer(self) -> dict[int, float]:
        """The answer at subscribe time — the base of the delta stream."""
        return dict(self._initial)

    def poll(self) -> list[AnswerDelta]:
        """Drain this subscription's queued deltas, in emission order."""
        if self.active:
            self._registry.pump()
        drained = self._pending
        self._pending = []
        return drained

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "active" if self.active else "cancelled"
        return (
            f"Subscription(id={self.id}, {state}, target={self.target!r}, "
            f"answer_size={len(self._answer)}, pending={len(self._pending)})"
        )


class SubscriptionRegistry:
    """Standing subscriptions over live databases, maintained incrementally.

    The registry shares the session's database objects and observes their
    mutation stream; its own evaluator runs the shared staged machinery
    under ``draw_plan="query_keyed"`` so every maintained answer equals a
    cold evaluation of the same query.  Mutation events are buffered
    cheaply as they arrive and settled in :meth:`pump` (called by
    ``poll``/``answer``/``stats`` and by the owning session after each
    mutation), where each *active* subscription is either skipped — with a
    proof the buffered mutations cannot have changed its answer — or
    re-evaluated and diffed.  The ``reevaluations`` / ``skipped`` counters
    in :meth:`stats` expose that selectivity.

    Not thread-safe, like the engines it wraps.
    """

    def __init__(
        self,
        *,
        point_db: Any = None,
        uncertain_db: Any = None,
        config: Any,
    ) -> None:
        if point_db is None and uncertain_db is None:
            raise ConfigurationError("a subscription registry needs at least one database")
        sharded = [
            isinstance(db, ShardedDatabase)
            for db in (point_db, uncertain_db)
            if db is not None
        ]
        if any(sharded) and not all(sharded):
            raise ConfigurationError(
                "cannot mix sharded and unsharded databases in one registry"
            )
        self._point_db = point_db
        self._uncertain_db = uncertain_db
        self._sharded = any(sharded)
        if config.draw_plan != "query_keyed":
            # Content-keyed draws make maintained answers reproducible by
            # any cold evaluation of the same query; position-keyed plans
            # would tie them to an irrelevant stream position.
            config = config.with_overrides(draw_plan="query_keyed")
        self.config = config
        self._parallel: ParallelEngine | None = None
        self._pipeline: QueryPipeline | None = None
        if self._sharded:
            self._parallel = ParallelEngine(
                point_db=point_db, uncertain_db=uncertain_db, config=config, workers=1
            )
        else:
            self._pipeline = QueryPipeline(
                point_db=point_db, uncertain_db=uncertain_db, config=config
            )
        self._events: list[UpdateEvent] = []
        self._subscriptions: dict[int, Subscription] = {}
        self._ids = itertools.count(1)
        self._sequence = 0
        self._subscribed_total = 0
        self._deltas_emitted = 0
        self._reevaluations = 0
        self._skipped = 0
        self._rounds = 0
        self._sources = [db for db in (point_db, uncertain_db) if db is not None]
        for db in self._sources:
            db.add_update_observer(self._record_event)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def subscribe(self, query: Query) -> Subscription:
        """Register a standing query; returns its :class:`Subscription`.

        The initial answer is evaluated immediately (after settling any
        buffered mutations), so the handle starts consistent and the delta
        stream replays from a well-defined base.
        """
        if isinstance(query, NearestNeighborQuery):
            target = "points"
        elif isinstance(query, RangeQuery):
            target = query.target
        else:
            raise InvalidArgumentError(
                "subscriptions take a RangeQuery or NearestNeighborQuery, "
                f"got {type(query).__name__}"
            )
        if self._database(target) is None:
            noun = "point-object" if target == "points" else "uncertain-object"
            raise EngineStateError(f"no {noun} database configured")
        self.pump()
        window = relevance_window(query)
        subscription = Subscription(
            registry=self,
            subscription_id=next(self._ids),
            query=query,
            target=target,
            window=window,
            answer=self._evaluate(query),
            scope=self._scope(target, query, window),
        )
        self._subscriptions[subscription.id] = subscription
        self._subscribed_total += 1
        return subscription

    def unsubscribe(self, subscription: "Subscription | int") -> None:
        """Cancel a subscription; its undrained deltas are discarded."""
        subscription_id = (
            subscription.id
            if isinstance(subscription, Subscription)
            else int(subscription)
        )
        cancelled = self._subscriptions.pop(subscription_id, None)
        if cancelled is None:
            raise MissingItemError(f"no active subscription with id {subscription_id}")
        cancelled.active = False
        cancelled._pending = []

    def close(self) -> None:
        """Detach from the observed databases (idempotent)."""
        for db in self._sources:
            db.remove_update_observer(self._record_event)

    def __len__(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def _record_event(self, event: UpdateEvent) -> None:
        # The observer hot path: mutations must stay O(index maintenance),
        # so events are only buffered here and settled at the next pump.
        self._events.append(event)

    def pump(self) -> None:
        """Settle buffered mutations: re-evaluate and diff affected subscriptions.

        One pass per call, re-evaluating each affected subscription at most
        once no matter how many buffered mutations touched it.  No-op when
        nothing mutated since the last pump.
        """
        if not self._events:
            return
        events = self._events
        self._events = []
        self._rounds += 1
        for subscription in list(self._subscriptions.values()):
            affected, trigger = self._assess(subscription, events)
            if not affected:
                self._skipped += 1
                continue
            self._reevaluations += 1
            self._refresh(subscription, trigger)

    def poll(self) -> list[AnswerDelta]:
        """Drain every subscription's queued deltas as one ordered stream."""
        self.pump()
        drained: list[AnswerDelta] = []
        for subscription in self._subscriptions.values():
            drained.extend(subscription._pending)
            subscription._pending = []
        drained.sort(key=lambda delta: delta.sequence)
        return drained

    def stats(self) -> dict[str, int]:
        """Maintenance counters (settling buffered mutations first).

        ``reevaluations`` counts subscription evaluations actually run by
        pumps, ``skipped`` the subscription/round pairs proven unaffected —
        the pair that shows selectivity is real.  ``rounds`` counts pumps
        that had mutations to settle.
        """
        self.pump()
        return {
            "active": len(self._subscriptions),
            "subscribed_total": self._subscribed_total,
            "deltas_emitted": self._deltas_emitted,
            "reevaluations": self._reevaluations,
            "skipped": self._skipped,
            "rounds": self._rounds,
            "pending_deltas": sum(
                len(subscription._pending)
                for subscription in self._subscriptions.values()
            ),
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _database(self, target: str) -> Any:
        return self._point_db if target == "points" else self._uncertain_db

    def _evaluate(self, query: Query) -> dict[int, float]:
        if self._parallel is not None:
            return self._parallel.evaluate(query).probabilities()
        return self._pipeline.run_batch([query], [0])[0].probabilities()

    def _scope(self, target: str, query: Query, window: Rect | None) -> Hashable:
        """The state token the subscription's current answer depends on."""
        database = self._database(target)
        if self._sharded:
            if window is None:
                routed = database.route_nearest(query.issuer.region)
            else:
                routed = database.route_window(window)
            return database.epoch_scope(routed)
        return (target, database.uid, database.epoch)

    def _assess(
        self, subscription: Subscription, events: list[UpdateEvent]
    ) -> tuple[bool, UpdateEvent | None]:
        """Whether buffered ``events`` can have changed a subscription's answer.

        Returns ``(affected, trigger)`` where ``trigger`` is the last event
        that implicates the subscription (best-effort attribution for the
        emitted deltas' ``op`` field).
        """
        if self._sharded:
            if self._scope(subscription.target, subscription.query, subscription.window) == (
                subscription._scope
            ):
                return False, None
            trigger = None
            for event in events:
                if event.target != subscription.target:
                    continue
                if (
                    subscription.window is None
                    or event.region is None
                    or event.region.overlaps(subscription.window)
                ):
                    trigger = event
            return True, trigger if trigger is not None else (events[-1] if events else None)
        affected = False
        trigger = None
        for event in events:
            if event.target != subscription.target:
                continue
            if self._pipeline.affected_by(subscription.query, event.region):
                affected = True
                trigger = event
        return affected, trigger

    def _refresh(self, subscription: Subscription, trigger: UpdateEvent | None) -> None:
        """Re-evaluate one subscription, diff, and queue ordered deltas."""
        fresh = self._evaluate(subscription.query)
        scope = self._scope(subscription.target, subscription.query, subscription.window)
        retained = subscription._answer
        op = trigger.op if trigger is not None else None
        deltas: list[AnswerDelta] = []
        for oid in sorted(retained.keys() | fresh.keys()):
            before = retained.get(oid)
            after = fresh.get(oid)
            if before is None:
                kind = DeltaKind.JOIN
            elif after is None:
                kind = DeltaKind.LEAVE
            elif after != before:
                kind = DeltaKind.SCORE_CHANGE
            else:
                continue
            self._sequence += 1
            deltas.append(
                AnswerDelta(
                    subscription_id=subscription.id,
                    kind=kind,
                    oid=oid,
                    probability=after,
                    previous_probability=before,
                    op=op,
                    epoch=scope,
                    sequence=self._sequence,
                )
            )
        subscription._answer = fresh
        subscription._scope = scope
        subscription._pending.extend(deltas)
        self._deltas_emitted += len(deltas)
