# lint-fixture-path: repro/core/example.py
"""Counters are copied before accumulation; reads never mutate."""

from repro.core.cache import copy_statistics


def merge(evaluations):
    merged = copy_statistics(evaluations[0].statistics)
    for evaluation in evaluations[1:]:
        merged.candidates_examined += evaluation.statistics.candidates_examined
        merged.pruned["expansion"] += 1
    return merged


def rebound_alias_is_fine(evaluation):
    stats = evaluation.statistics
    stats = copy_statistics(stats)
    stats.results_returned += 1
    return stats


def read_only(evaluation):
    return evaluation.statistics.response_time
