"""Common interface implemented by every spatial index in the package."""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

from repro.geometry.rect import Rect
from repro.index.iostats import IOStatistics


@runtime_checkable
class SpatialIndex(Protocol):
    """Protocol shared by :class:`RTree`, :class:`GridFile`, :class:`LinearScanIndex`.

    An index stores arbitrary *items* keyed by their minimum bounding
    rectangle and answers window (range) queries: return every item whose MBR
    intersects the query rectangle.  Indexes expose an :class:`IOStatistics`
    object so callers can attribute page accesses to individual queries.
    """

    @property
    def stats(self) -> IOStatistics:
        """Access counters accumulated by this index."""
        ...

    def __len__(self) -> int:
        """Number of stored items."""
        ...

    def insert(self, mbr: Rect, item: Any) -> None:
        """Insert one item with the given bounding rectangle."""
        ...

    def range_search(self, query: Rect) -> list[Any]:
        """Return all items whose MBR intersects ``query``."""
        ...


def extract_mbr(item: Any) -> Rect:
    """Best-effort extraction of an item's bounding rectangle.

    Accepts anything exposing an ``mbr`` attribute (the object wrappers in
    :mod:`repro.uncertainty.region`), a :class:`Rect`, or a 4-tuple.
    """
    if isinstance(item, Rect):
        return item
    mbr = getattr(item, "mbr", None)
    if isinstance(mbr, Rect):
        return mbr
    if isinstance(item, tuple) and len(item) == 4:
        return Rect(*item)
    raise TypeError(f"cannot derive an MBR from {item!r}")


def bulk_pairs(items: Iterable[Any]) -> list[tuple[Rect, Any]]:
    """Pair every item with its extracted MBR, ready for bulk loading."""
    return [(extract_mbr(item), item) for item in items]
