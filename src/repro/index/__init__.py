"""Spatial indexes and their I/O cost model.

The paper evaluates its techniques on top of an R-tree (Guttman, 1984) built
with the Spatial Index Library, plus the Probability Threshold Index (PTI) of
Cheng et al. (VLDB 2004) for constrained queries over uncertain objects.  A
grid file (Nievergelt et al., 1984) is mentioned as an alternative.  All three
are implemented here from scratch, together with a linear-scan baseline and a
shared node/page-access accounting model so that experiments can report
machine-independent I/O costs alongside wall-clock times.
"""

from repro.index.iostats import IOStatistics
from repro.index.base import SpatialIndex
from repro.index.rtree import RTree
from repro.index.pti import ProbabilityThresholdIndex
from repro.index.gridfile import GridFile
from repro.index.linear import LinearScanIndex
from repro.index.registry import (
    IndexBackend,
    IndexCapabilities,
    available_indexes,
    build_index,
    get_index_backend,
    register_index,
    unregister_index,
)

__all__ = [
    "IOStatistics",
    "SpatialIndex",
    "RTree",
    "ProbabilityThresholdIndex",
    "GridFile",
    "LinearScanIndex",
    "IndexBackend",
    "IndexCapabilities",
    "available_indexes",
    "build_index",
    "get_index_backend",
    "register_index",
    "unregister_index",
]
