"""Ablation — Monte-Carlo sample count for non-uniform pdfs (Section 6.2).

The paper's sensitivity analysis settled on 200 samples per C-IPQ probability
and 250 per C-IUQ probability.  This benchmark measures how the per-query
cost scales with the sample count (accuracy is covered by
``repro.experiments.sensitivity.monte_carlo_sample_sweep`` and its tests).
"""

import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import EngineConfig, ImpreciseQueryEngine

from benchmarks.conftest import issuer_for

SAMPLE_COUNTS = [50, 200, 800]


@pytest.mark.parametrize("samples", SAMPLE_COUNTS)
def test_gaussian_cipq_cost_vs_samples(benchmark, point_db, samples):
    """C-IPQ with a Gaussian issuer at Qp = 0.3 and the given sample count."""
    engine = ImpreciseQueryEngine(
        point_db=point_db,
        config=EngineConfig(probability_method="monte_carlo", monte_carlo_samples=samples),
    )
    issuer, spec = issuer_for(250.0, pdf="gaussian", threshold=0.3)
    result = benchmark(lambda: engine.evaluate(RangeQuery.cipq(issuer, spec, 0.3)))
    assert result.statistics.monte_carlo_samples >= 0


@pytest.mark.parametrize("samples", SAMPLE_COUNTS)
def test_gaussian_ciuq_cost_vs_samples(benchmark, uncertain_db_pti, samples):
    """C-IUQ with Monte-Carlo probabilities at Qp = 0.3 and the given sample count."""
    engine = ImpreciseQueryEngine(
        uncertain_db=uncertain_db_pti,
        config=EngineConfig(probability_method="monte_carlo", monte_carlo_samples=samples),
    )
    issuer, spec = issuer_for(250.0, pdf="gaussian", threshold=0.3)
    result = benchmark(lambda: engine.evaluate(RangeQuery.ciuq(issuer, spec, 0.3)))
    assert result.statistics.monte_carlo_samples >= 0
