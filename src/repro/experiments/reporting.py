"""Reporting helpers: text tables, CSV export, and qualitative shape checks.

The reproduction cannot match the paper's absolute milliseconds (different
hardware, language and decade), so EXPERIMENTS.md records *shape* checks:
orderings between methods, monotonic trends, and approximate speed-up factors.
:func:`check_shape` encodes those checks so they can be asserted by tests and
re-evaluated after every run.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.runner import FigureResult


def format_figure(result: FigureResult, *, metric: str = "response_time_ms") -> str:
    """Render a figure's series as a fixed-width text table.

    ``metric`` selects which :class:`SeriesPoint` field is shown; the default
    matches the paper's y-axis (average response time in milliseconds).
    """
    names = result.series_names()
    xs = result.x_values()
    buffer = io.StringIO()
    buffer.write(f"{result.figure_id}: {result.title}\n")
    if result.notes:
        buffer.write(f"  note: {result.notes}\n")
    header = [result.x_label.ljust(28)] + [name.rjust(24) for name in names]
    buffer.write("".join(header) + "\n")
    for x in xs:
        row = [f"{x:<28g}"]
        for name in names:
            try:
                value = getattr(result.value_at(name, x), metric)
                row.append(f"{value:>24.3f}")
            except KeyError:
                row.append(" " * 24)
        buffer.write("".join(row) + "\n")
    return buffer.getvalue()


def figure_to_csv(result: FigureResult, path: str | Path) -> Path:
    """Write all series of a figure to a CSV file and return its path."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        handle.write(
            "figure_id,series,x,response_time_ms,candidates,node_accesses,"
            "results,probability_computations\n"
        )
        for name, points in result.series.items():
            for point in sorted(points, key=lambda p: p.x):
                handle.write(
                    f"{result.figure_id},{name},{point.x},{point.response_time_ms},"
                    f"{point.candidates},{point.node_accesses},{point.results},"
                    f"{point.probability_computations}\n"
                )
    return target


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one qualitative comparison against the paper."""

    description: str
    passed: bool
    detail: str = ""


def _is_mostly_increasing(values: list[float], *, tolerance: float = 0.25) -> bool:
    """True when the sequence trends upwards (small local dips are tolerated)."""
    if len(values) < 2:
        return True
    violations = sum(
        1 for a, b in zip(values, values[1:]) if b < a * (1.0 - tolerance)
    )
    return violations == 0 and values[-1] >= values[0] * (1.0 - tolerance)


def check_shape(result: FigureResult) -> list[ShapeCheck]:
    """Evaluate the paper's qualitative claims for one reproduced figure."""
    checks: list[ShapeCheck] = []
    figure = result.figure_id

    if figure == "figure_08":
        ratio = result.mean_ratio("basic", "enhanced")
        checks.append(
            ShapeCheck(
                "basic method is much slower than the enhanced method",
                ratio > 5.0,
                f"mean basic/enhanced response-time ratio = {ratio:.1f}x",
            )
        )
        for name in ("basic", "enhanced"):
            times = result.response_times(name)
            checks.append(
                ShapeCheck(
                    f"{name} response time grows with the uncertainty-region size",
                    _is_mostly_increasing(times),
                    f"{name}: {['%.2f' % t for t in times]}",
                )
            )

    elif figure in ("figure_09", "figure_10"):
        for name in result.series_names():
            times = result.response_times(name)
            checks.append(
                ShapeCheck(
                    f"{name}: response time grows with u",
                    _is_mostly_increasing(times),
                    f"{name}: {['%.2f' % t for t in times]}",
                )
            )
        # Larger ranges cost more at the paper's default u = 250.
        xs = result.x_values()
        if xs:
            x_ref = xs[len(xs) // 2]
            ordered = [
                result.value_at(name, x_ref).response_time_ms
                for name in result.series_names()
            ]
            checks.append(
                ShapeCheck(
                    "larger query ranges are more expensive",
                    all(a <= b * 1.25 for a, b in zip(ordered, ordered[1:])),
                    f"at u={x_ref:g}: {['%.2f' % value for value in ordered]}",
                )
            )

    elif figure in ("figure_11", "figure_12", "figure_13"):
        fast = "p_expanded_query" if "p_expanded_query" in result.series else "pti_p_expanded_query"
        slow = "minkowski_sum"
        xs = [x for x in result.x_values() if x > 0]
        # At low thresholds the threshold-aware window barely shrinks, so both
        # the paper's curves and the reproduction sit near parity there; the
        # strict "must win" requirement only applies from Qp = 0.4 upwards,
        # while low thresholds must stay within 30 % of the baseline.
        high_xs = [x for x in xs if x >= 0.4]
        low_xs = [x for x in xs if x < 0.4]
        high_wins = sum(
            1
            for x in high_xs
            if result.value_at(fast, x).response_time_ms
            <= result.value_at(slow, x).response_time_ms * 1.05
        )
        checks.append(
            ShapeCheck(
                "threshold-aware method wins at every threshold Qp >= 0.4",
                high_wins == len(high_xs),
                f"{high_wins}/{len(high_xs)} thresholds",
            )
        )
        if low_xs:
            near_parity = sum(
                1
                for x in low_xs
                if result.value_at(fast, x).response_time_ms
                <= result.value_at(slow, x).response_time_ms * 1.3
            )
            checks.append(
                ShapeCheck(
                    "threshold-aware method stays near parity at low thresholds",
                    near_parity == len(low_xs),
                    f"{near_parity}/{len(low_xs)} thresholds within 30%",
                )
            )
        if xs:
            x_hi = max(xs)
            gain = (
                result.value_at(slow, x_hi).response_time_ms
                / max(result.value_at(fast, x_hi).response_time_ms, 1e-9)
            )
            checks.append(
                ShapeCheck(
                    "speed-up grows towards high thresholds",
                    gain >= 1.2,
                    f"gain at Qp={x_hi:g}: {gain:.2f}x",
                )
            )
    return checks


def format_shape_checks(checks: list[ShapeCheck]) -> str:
    """Render shape-check outcomes as a short text report."""
    lines = []
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"[{status}] {check.description} — {check.detail}")
    return "\n".join(lines)
