"""Live-update batches: ordered insert/delete/move streams for the engines.

The paper's motivating objects *move* — cabs, patrols and privacy-cloaked
users report fresh positions between queries — so updates are a first-class
input next to queries, not a rebuild trigger.  An :class:`UpdateBatch` is an
ordered list of mutations that both engines accept:

* applied directly via ``engine.apply_updates(batch)`` (or the per-operation
  ``engine.insert`` / ``engine.delete`` / ``engine.move``), or
* *interleaved* with queries inside ``evaluate_many``: an ``UpdateBatch``
  appearing in the workload iterable is applied at exactly that point in the
  stream, queries before it see the old data, queries after it the new.

Updates never consume query sequence numbers, so under the per-oid draw plan
a query's Monte-Carlo draws — keyed by ``(rng_seed, query_seq, oid)`` — stay
bitwise-identical no matter how many unrelated updates ran before it.  That
is the invariant that lets a live-mutated database answer exactly like a
from-scratch rebuild of the same final collection.

Example::

    batch = (
        UpdateBatch()
        .insert(PointObject.at(901, 4200.0, 880.0))
        .move(17, x=3950.0, y=1020.0)
        .delete(23)
    )
    session.evaluate_many([query_a, batch, query_b])  # query_b sees the updates
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Literal

UpdateAction = Literal["insert", "delete", "move"]
UpdateTarget = Literal["points", "uncertain"]


def resolve_move_target(
    x: float | None, y: float | None, pdf: Any, target: UpdateTarget | None
) -> UpdateTarget:
    """Infer (and validate) which database a move addresses.

    ``x``/``y`` imply a point object, ``pdf`` an uncertain one; mixing the
    forms, providing neither in full, or passing a contradicting ``target``
    is rejected.  The single validation used by :meth:`UpdateBatch.move` and
    both engines' ``move`` methods, so every layer accepts and rejects the
    same shapes.
    """
    if pdf is not None and (x is not None or y is not None):
        raise ValueError("pass either x= and y= (points) or pdf= (uncertain), not both")
    if pdf is not None:
        inferred: UpdateTarget = "uncertain"
    elif x is not None and y is not None:
        inferred = "points"
    else:
        raise ValueError("a move takes either x= and y= (points) or pdf= (uncertain)")
    if target is not None and target != inferred:
        raise ValueError(
            f"target {target!r} contradicts the move arguments (which imply {inferred!r})"
        )
    return inferred


def pick_mutation_database(point_db: Any, uncertain_db: Any, target: str | None) -> Any:
    """The database a ``delete`` addresses, shared by both engines.

    ``target`` picks explicitly; ``None`` resolves to the only database the
    engine holds (ambiguous with both present).
    """
    if target is None:
        if point_db is not None and uncertain_db is None:
            target = "points"
        elif uncertain_db is not None and point_db is None:
            target = "uncertain"
        else:
            raise ValueError(
                "the engine holds both databases; "
                "pass target='points' or target='uncertain'"
            )
    elif target not in ("points", "uncertain"):
        raise ValueError(f"unknown target database: {target!r}")
    database = point_db if target == "points" else uncertain_db
    if database is None:
        noun = "point-object" if target == "points" else "uncertain-object"
        raise RuntimeError(f"no {noun} database configured")
    return database


@dataclass(frozen=True)
class UpdateOp:
    """One mutation: an insert payload, a delete key, or a move key + position.

    ``target`` disambiguates which database a ``delete``/``move`` refers to
    when a session holds both; ``None`` lets the engine pick its only (or the
    inferred) database.
    """

    action: UpdateAction
    obj: Any = None
    oid: int | None = None
    x: float | None = None
    y: float | None = None
    pdf: Any = None
    target: UpdateTarget | None = None


class UpdateBatch:
    """An ordered, append-only batch of live mutations.

    Builder-style: each call appends one operation and returns the batch, so
    streams read like the update log they model.  Application order is the
    append order.
    """

    def __init__(self, ops: Iterator[UpdateOp] | list[UpdateOp] | None = None) -> None:
        self._ops: list[UpdateOp] = list(ops) if ops is not None else []

    def insert(self, obj: Any) -> "UpdateBatch":
        """Queue an object insertion (a ``PointObject`` or ``UncertainObject``)."""
        self._ops.append(UpdateOp(action="insert", obj=obj))
        return self

    def delete(self, oid: int, *, target: UpdateTarget | None = None) -> "UpdateBatch":
        """Queue a deletion by object id."""
        self._ops.append(UpdateOp(action="delete", oid=int(oid), target=target))
        return self

    def move(
        self,
        oid: int,
        *,
        x: float | None = None,
        y: float | None = None,
        pdf: Any = None,
        target: UpdateTarget | None = None,
    ) -> "UpdateBatch":
        """Queue a relocation: ``x``/``y`` for a point object, ``pdf`` for an
        uncertain one."""
        resolve_move_target(x, y, pdf, target)
        self._ops.append(
            UpdateOp(action="move", oid=int(oid), x=x, y=y, pdf=pdf, target=target)
        )
        return self

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[UpdateOp]:
        return iter(self._ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        counts: dict[str, int] = {}
        for op in self._ops:
            counts[op.action] = counts.get(op.action, 0) + 1
        summary = ", ".join(f"{count} {action}" for action, count in counts.items())
        return f"UpdateBatch({summary or 'empty'})"


def apply_update_op(engine: Any, op: UpdateOp) -> None:
    """Apply one operation through an engine's mutation surface.

    Both :class:`~repro.core.engine.ImpreciseQueryEngine` and
    :class:`~repro.core.parallel.ParallelEngine` expose the same
    ``insert`` / ``delete`` / ``move`` methods; this helper is the single
    translation from the declarative :class:`UpdateOp` to those calls.
    """
    if op.action == "insert":
        engine.insert(op.obj)
    elif op.action == "delete":
        engine.delete(op.oid, target=op.target)
    elif op.action == "move":
        engine.move(op.oid, x=op.x, y=op.y, pdf=op.pdf, target=op.target)
    else:  # pragma: no cover - UpdateOp constrains the action literal
        raise ValueError(f"unknown update action: {op.action!r}")
