"""TIGER-like datasets matching the paper's experimental setup.

Section 6.1 of the paper: "We use two realistic data sets, namely California
and Long Beach.  The California data set contains 62K points.  The Long Beach
data set contains 53K rectangles.  The objects in both data sets occupy a 2D
space of 10,000 × 10,000 units."

The raw TIGER/Line files cannot be bundled with this reproduction, so the
functions below generate deterministic synthetic stand-ins with the same
cardinalities, the same data space, and a road-corridor cluster skew
resembling street-derived data.  Every experiment accepts a ``scale`` factor
so the shapes of the paper's figures can be reproduced quickly on smaller
samples while the full-size datasets remain available.
"""

from __future__ import annotations
from repro.errors import DatasetError

from repro.geometry.rect import Rect
from repro.datasets.synthetic import clustered_points, clustered_rectangles
from repro.uncertainty.region import PointObject, UncertainObject

#: The 10,000 × 10,000-unit data space used by all experiments.
DATA_SPACE = Rect(0.0, 0.0, 10_000.0, 10_000.0)

#: Cardinalities reported in the paper.
CALIFORNIA_SIZE = 62_000
LONG_BEACH_SIZE = 53_000

#: Seeds fixed so that every run of the reproduction sees identical data.
_CALIFORNIA_SEED = 20070415
_LONG_BEACH_SEED = 20070420


def california_points(
    *, scale: float = 1.0, bounds: Rect = DATA_SPACE, seed: int = _CALIFORNIA_SEED
) -> list[PointObject]:
    """The synthetic stand-in for the California point dataset (62 K points).

    ``scale`` shrinks the cardinality proportionally (``scale=0.1`` gives
    6.2 K points) so tests and quick benchmarks stay fast; the spatial
    distribution is unaffected.
    """
    if scale <= 0:
        raise DatasetError("scale must be positive")
    n = max(1, int(round(CALIFORNIA_SIZE * scale)))
    return clustered_points(
        n,
        bounds,
        n_clusters=64,
        background_fraction=0.25,
        seed=seed,
    )


def long_beach_uncertain_objects(
    *, scale: float = 1.0, bounds: Rect = DATA_SPACE, seed: int = _LONG_BEACH_SEED
) -> list[UncertainObject]:
    """The synthetic stand-in for the Long Beach rectangle dataset (53 K rectangles).

    Rectangles model uncertainty regions of moving objects; side lengths are
    drawn between 20 and 200 units (0.2 %–2 % of the space per axis), which
    matches the "small MBR" character of the original street-segment data.
    """
    if scale <= 0:
        raise DatasetError("scale must be positive")
    n = max(1, int(round(LONG_BEACH_SIZE * scale)))
    return clustered_rectangles(
        n,
        bounds,
        n_clusters=48,
        background_fraction=0.25,
        size_range=(20.0, 200.0),
        seed=seed,
    )
