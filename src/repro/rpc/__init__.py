"""Distributed shard service: RPC workers, scatter-gather, epoch coherence.

The package splits the shared-memory parallel executor across process — and
potentially machine — boundaries:

* :mod:`repro.rpc.wire` — the framed binary protocol's header codecs.
* :mod:`repro.rpc.shardd` — the per-shard daemon (``python -m
  repro.rpc.shardd``) hosting shard indexes behind an asyncio server.
* :mod:`repro.rpc.pool` — the parent-side pipelined connection pool and
  authoritative epoch map.
* :mod:`repro.rpc.engine` — :class:`~repro.rpc.engine.RemoteEngine`, the
  :class:`~repro.core.parallel.ParallelEngine` subclass that scatters
  routed plan-token batches over the pool.
* :mod:`repro.rpc.launcher` — :class:`~repro.rpc.launcher.LocalShardCluster`
  for spawning a local daemon fleet (tests, benchmarks, demos).

Entry point for most callers: ``Session.distributed(...)``
(:meth:`repro.core.session.Session.distributed`).

Submodules are imported lazily by consumers (``shardd`` pulls in the full
engine stack); this package module stays import-light so ``repro.rpc.wire``
can load inside daemon processes without dragging the launcher along.
"""

from repro.rpc import wire

__all__ = ["wire"]
