"""Continuous queries over a moving cab fleet: geofenced join/leave alerts.

A dispatcher registers standing queries once — "alert me when a cab is
probably inside my pickup zone" — and then only consumes **deltas** as
position reports stream in, instead of re-running the query every tick.
The example registers a handful of geofence subscriptions over a point
fleet, streams batches of cab movements through the session, and prints
the JOIN / LEAVE / SCORE_CHANGE alerts each batch produces, together with
the registry counters showing how few subscriptions each batch actually
re-evaluated.

Run with::

    python examples/fleet_alerts.py
"""

from __future__ import annotations

from repro import (
    Point,
    PointObject,
    RangeQuery,
    RangeQuerySpec,
    Rect,
    Session,
    UncertainObject,
    UpdateBatch,
)
from repro.datasets.synthetic import clustered_points

CITY = Rect(0.0, 0.0, 10_000.0, 10_000.0)
PICKUP_ZONES = [
    ("airport", Point(1_500.0, 8_200.0)),
    ("stadium", Point(5_000.0, 5_000.0)),
    ("old town", Point(8_300.0, 2_100.0)),
]


def _dispatcher(oid: int, center: Point) -> UncertainObject:
    """The dispatcher terminal's own (slightly imprecise) position."""
    return UncertainObject.uniform(oid, Rect.from_center(center, 150.0, 150.0))


def _drift_batch(fleet, round_index: int, per_round: int = 12) -> UpdateBatch:
    """A position-report batch: a few cabs drift, one detours across town."""
    batch = UpdateBatch()
    for step in range(per_round):
        cab = fleet[(round_index * per_round + step) % len(fleet)]
        dx = 140.0 * ((step % 5) - 2)
        dy = 90.0 * ((round_index + step) % 3 - 1)
        x = min(max(cab.location.x + dx, 10.0), 9_990.0)
        y = min(max(cab.location.y + dy, 10.0), 9_990.0)
        batch.move(cab.oid, x=x, y=y)
    return batch


def main() -> None:
    fleet = clustered_points(3_000, CITY, seed=20_070_415)
    session = Session.from_objects(points=fleet)

    print("registering one standing geofence query per pickup zone ...")
    subscriptions = {}
    for position, (name, center) in enumerate(PICKUP_ZONES):
        query = RangeQuery.ipq(
            _dispatcher(50_000 + position, center), RangeQuerySpec.square(450.0)
        )
        subscriptions[name] = session.subscribe(query)
        print(f"  {name:8s}: {len(subscriptions[name].answer()):3d} cabs in zone")

    for round_index in range(6):
        session.apply_updates(_drift_batch(fleet, round_index))
        alerts = session.poll_deltas()
        print(f"\nround {round_index + 1}: {len(alerts)} alert(s)")
        by_id = {sub.id: name for name, sub in subscriptions.items()}
        for alert in alerts:
            zone = by_id[alert.subscription_id]
            if alert.kind.value == "join":
                detail = f"entered (p = {alert.probability:.2f})"
            elif alert.kind.value == "leave":
                detail = "left"
            else:
                detail = (
                    f"p {alert.previous_probability:.2f} -> {alert.probability:.2f}"
                )
            print(f"  [{zone}] cab {alert.oid}: {detail}")

    counters = session.stats().subscriptions
    total = counters["reevaluations"] + counters["skipped"]
    print(
        f"\nmaintenance cost: {counters['reevaluations']} re-evaluations out of "
        f"{total} subscription-rounds "
        f"({counters['skipped']} skipped with a staleness-impossibility proof)"
    )


if __name__ == "__main__":
    main()
