"""Shared fixtures for the test suite.

Fixtures build tiny but non-trivial datasets (hundreds of objects) so that
whole-engine tests stay fast while still exercising multi-node index
structures and non-empty query answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.engine import PointDatabase, UncertainDatabase
from repro.core.queries import RangeQuerySpec
from repro.datasets.synthetic import clustered_points, clustered_rectangles
from repro.datasets.workload import QueryWorkload
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import UncertainObject

#: A small data space shared by the fixture datasets (distinct from the
#: paper's 10,000² space so tests that hard-code coordinates stay readable).
TEST_SPACE = Rect(0.0, 0.0, 10_000.0, 10_000.0)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic random generator for sampling-based tests."""
    return np.random.default_rng(424242)


@pytest.fixture(scope="session")
def small_points():
    """~600 clustered point objects in the test space."""
    return clustered_points(600, TEST_SPACE, seed=1)


@pytest.fixture(scope="session")
def small_uncertain():
    """~500 clustered uncertain objects (uniform pdfs) with U-catalogs."""
    objects = clustered_rectangles(500, TEST_SPACE, size_range=(20.0, 200.0), seed=2)
    return [obj.with_catalog() for obj in objects]


@pytest.fixture(scope="session")
def point_db(small_points) -> PointDatabase:
    """R-tree-indexed point database."""
    return PointDatabase.build(small_points)


@pytest.fixture(scope="session")
def uncertain_db(small_uncertain) -> UncertainDatabase:
    """PTI-indexed uncertain database."""
    return UncertainDatabase.build(small_uncertain, index_kind="pti")


@pytest.fixture(scope="session")
def uncertain_db_rtree(small_uncertain) -> UncertainDatabase:
    """Plain R-tree-indexed uncertain database over the same objects."""
    return UncertainDatabase.build(small_uncertain, index_kind="rtree")


@pytest.fixture()
def default_spec() -> RangeQuerySpec:
    """The paper's default square range (w = 500)."""
    return RangeQuerySpec.square(500.0)


@pytest.fixture()
def default_workload() -> QueryWorkload:
    """A workload with the paper's default parameters over the test space."""
    return QueryWorkload(bounds=TEST_SPACE, seed=7)


@pytest.fixture()
def uniform_issuer() -> UncertainObject:
    """A uniform-pdf query issuer centred in the test space, with a catalog."""
    region = Rect.from_center(Point(5_000.0, 5_000.0), 250.0, 250.0)
    return UncertainObject(oid=0, pdf=UniformPdf(region)).with_catalog()
