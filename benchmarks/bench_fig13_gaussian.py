"""Figure 13 — C-IPQ with a Gaussian issuer pdf evaluated by Monte-Carlo.

The paper evaluates the non-uniform case with Monte-Carlo integration (at
least 200 samples per probability), which makes every probability far more
expensive than the closed-form uniform case; the p-expanded-query therefore
pays off even more.  Expected shape: same ordering as Figure 11 at a much
higher absolute cost.
"""

import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import EngineConfig, ImpreciseQueryEngine

from benchmarks.conftest import issuer_for

THRESHOLDS = [0.0, 0.3, 0.6, 0.9]
MC_SAMPLES = 200  # the paper's sensitivity analysis: >= 200 samples for C-IPQ


def _engine(point_db, use_p_expanded: bool) -> ImpreciseQueryEngine:
    return ImpreciseQueryEngine(
        point_db=point_db,
        config=EngineConfig(
            probability_method="monte_carlo",
            monte_carlo_samples=MC_SAMPLES,
            use_p_expanded_query=use_p_expanded,
        ),
    )


@pytest.mark.parametrize("qp", THRESHOLDS)
def test_gaussian_cipq_minkowski_sum(benchmark, point_db, qp):
    """Gaussian issuer, Monte-Carlo probabilities, Minkowski-sum filter."""
    engine = _engine(point_db, use_p_expanded=False)
    issuer, spec = issuer_for(250.0, pdf="gaussian", threshold=qp)
    result = benchmark(lambda: engine.evaluate(RangeQuery.cipq(issuer, spec, qp)))
    assert result.statistics.candidates_examined >= 0


@pytest.mark.parametrize("qp", THRESHOLDS)
def test_gaussian_cipq_p_expanded_query(benchmark, point_db, qp):
    """Gaussian issuer, Monte-Carlo probabilities, Qp-expanded-query filter."""
    engine = _engine(point_db, use_p_expanded=True)
    issuer, spec = issuer_for(250.0, pdf="gaussian", threshold=qp)
    result = benchmark(lambda: engine.evaluate(RangeQuery.cipq(issuer, spec, qp)))
    assert result.statistics.candidates_examined >= 0
