"""Core of the ``repro.tools.lint`` static analyzer.

The engine is deliberately small: a :class:`Module` wraps one parsed source
file, a :class:`Rule` inspects it and yields :class:`Diagnostic`\\ s, and
:func:`lint_paths` walks a file tree running every registered rule.  Rules
encode invariants this codebase has actually shipped bugs against (stale
un-epoch'd caches, shm leaks, stats aliasing, …); each carries a stable
``RPLxxx`` identifier so a violation can be silenced *at the line* with::

    risky_call()  # repro-lint: disable=RPL004

Suppressions are themselves checked: one that never fires is reported as
``RPL000`` so dead waivers cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import ConfigurationError

#: Rule id reserved for engine-level diagnostics (unused suppressions,
#: unparseable files).  It is not a registered rule and cannot be disabled.
ENGINE_RULE_ID = "RPL000"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")

#: Directory names the tree walker never descends into.  ``lint_fixtures``
#: holds deliberately-violating snippets used by the rule tests.
SKIP_DIRS = frozenset({"__pycache__", "lint_fixtures", ".git", ".ruff_cache"})

#: First-line marker a fixture uses to claim a virtual location, so rules
#: scoped by path (e.g. "only inside repro/core/") apply to it:
#: ``# lint-fixture-path: repro/core/example.py``
FIXTURE_PATH_RE = re.compile(r"#\s*lint-fixture-path:\s*(\S+)")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule, a location, and a human-readable message."""

    rule: str
    severity: str
    path: str
    line: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule)


@dataclass
class Module:
    """A parsed source file plus the metadata rules key off.

    ``relpath`` is the *logical* path — relative to the import root, so a
    file on disk at ``src/repro/core/engine.py`` has relpath
    ``repro/core/engine.py`` and test files keep their ``tests/`` prefix.
    Path-scoped rules match against this, which is also what lets fixture
    snippets impersonate in-tree locations.
    """

    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def in_package(self, prefix: str) -> bool:
        return self.relpath.startswith(prefix)

    @property
    def name(self) -> str:
        return Path(self.relpath).stem


class Rule:
    """Base class of every lint rule.

    Subclasses set ``rule_id`` / ``severity`` / ``description`` and
    implement :meth:`check`, yielding ``(line, message)`` pairs.  Override
    :meth:`applies_to` to scope the rule to part of the tree.
    """

    rule_id: str = ""
    severity: str = "error"
    description: str = ""

    def applies_to(self, module: Module) -> bool:
        return True

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        raise NotImplementedError

    def run(self, module: Module) -> list[Diagnostic]:
        if not self.applies_to(module):
            return []
        return [
            Diagnostic(self.rule_id, self.severity, module.relpath, line, message)
            for line, message in self.check(module)
        ]


#: ``rule_id`` → rule instance.  Populated by :func:`register`.
_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.rule_id or rule.rule_id == ENGINE_RULE_ID:
        raise ConfigurationError(
            f"rule {cls.__name__} needs a unique non-engine rule_id"
        )
    if rule.rule_id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in rule-id order (imports the rule modules)."""
    from repro.tools.lint import rules as _rules  # noqa: F401  (registers on import)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    all_rules()
    return _REGISTRY[rule_id]


# --------------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------------- #
def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Per-line ``# repro-lint: disable=...`` markers (1-based line numbers).

    Only genuine comment tokens count — the marker appearing inside a
    string or docstring (e.g. documentation showing the syntax) is not a
    suppression.
    """
    table: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            table[lineno] = {rule_id for rule_id in ids if rule_id}
    return table


def _apply_suppressions(
    module: Module, diagnostics: list[Diagnostic]
) -> list[Diagnostic]:
    suppressions = parse_suppressions(module.source)
    used: set[tuple[int, str]] = set()
    kept: list[Diagnostic] = []
    for diag in diagnostics:
        if diag.rule in suppressions.get(diag.line, ()):
            used.add((diag.line, diag.rule))
        else:
            kept.append(diag)
    for lineno, rule_ids in suppressions.items():
        for rule_id in sorted(rule_ids):
            if (lineno, rule_id) not in used:
                kept.append(
                    Diagnostic(
                        ENGINE_RULE_ID,
                        "error",
                        module.relpath,
                        lineno,
                        f"unused suppression for {rule_id}: no diagnostic "
                        "on this line matches it",
                    )
                )
    return kept


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def parse_module(source: str, relpath: str) -> Module:
    tree = ast.parse(source, filename=relpath)
    return Module(
        relpath=relpath, source=source, tree=tree, lines=source.splitlines()
    )


def lint_source(
    source: str, relpath: str, rules: Iterable[Rule] | None = None
) -> list[Diagnostic]:
    """Lint one in-memory source blob under a logical path.

    A leading ``# lint-fixture-path: <relpath>`` comment overrides
    ``relpath`` — fixture files use this to opt into path-scoped rules.
    """
    head = source.split("\n", 1)[0]
    match = FIXTURE_PATH_RE.search(head)
    if match:
        relpath = match.group(1)
    try:
        module = parse_module(source, relpath)
    except SyntaxError as error:
        return [
            Diagnostic(
                ENGINE_RULE_ID,
                "error",
                relpath,
                error.lineno or 1,
                f"could not parse: {error.msg}",
            )
        ]
    diagnostics: list[Diagnostic] = []
    for rule in all_rules() if rules is None else rules:
        diagnostics.extend(rule.run(module))
    return sorted(_apply_suppressions(module, diagnostics), key=Diagnostic.sort_key)


def logical_relpath(path: Path) -> str:
    """Map an on-disk path to the logical relpath rules match against.

    Everything up to and including a ``src`` component is stripped, so
    ``src/repro/core/engine.py`` → ``repro/core/engine.py``; paths with no
    ``src`` component (tests, scripts) keep their tail starting at the
    repo-conventional top directory when one is present.
    """
    parts = path.as_posix().split("/")
    if "src" in parts:
        tail = parts[parts.index("src") + 1 :]
        if tail:
            return "/".join(tail)
    for top in ("tests", "examples", "benchmarks"):
        if top in parts:
            return "/".join(parts[parts.index(top) :])
    return path.name


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, skipping :data:`SKIP_DIRS`."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for file in sorted(path.rglob("*.py")):
            if SKIP_DIRS.isdisjoint(file.parts):
                yield file


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
    cross_checks: bool = True,
) -> list[Diagnostic]:
    """Lint every python file under ``paths``; the CLI's workhorse.

    ``cross_checks`` additionally runs the import-time registry
    verifications (wire-code table, pdf codec registry) that cannot be
    expressed as per-file AST checks.
    """
    rule_list = list(all_rules() if rules is None else rules)
    diagnostics: list[Diagnostic] = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(source, logical_relpath(file), rule_list))
    if cross_checks:
        diagnostics.extend(run_cross_checks())
    return sorted(diagnostics, key=Diagnostic.sort_key)


#: Import-time registry checks; populated by rule modules via
#: :func:`register_cross_check`.
_CROSS_CHECKS: list[Callable[[], list[Diagnostic]]] = []


def register_cross_check(check: Callable[[], list[Diagnostic]]) -> Callable:
    _CROSS_CHECKS.append(check)
    return check


def run_cross_checks() -> list[Diagnostic]:
    """Run every registered import-time registry verification."""
    all_rules()  # ensure rule modules (and their checks) are loaded
    diagnostics: list[Diagnostic] = []
    for check in _CROSS_CHECKS:
        diagnostics.extend(check())
    return diagnostics
