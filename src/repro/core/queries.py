"""Query and answer types (Section 3.2 of the paper).

An imprecise location-dependent range query is described by

* the *query issuer* ``O0`` — an uncertain object whose pdf models the
  imprecision of the issuer's own location,
* the range rectangle's half-width ``w`` and half-height ``h`` (the range is
  centred at the issuer's true, unknown position), and
* an optional *probability threshold* ``Qp``; answers with qualification
  probability below the threshold are not reported (Definitions 5 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.region import UncertainObject


@dataclass(frozen=True, slots=True)
class RangeQuerySpec:
    """The shape of a location-dependent range query: half-width and half-height."""

    half_width: float
    half_height: float

    def __post_init__(self) -> None:
        if self.half_width < 0 or self.half_height < 0:
            raise ValueError("query half-extents must be non-negative")

    @staticmethod
    def square(half_size: float) -> "RangeQuerySpec":
        """A square range, the shape used throughout the paper's experiments."""
        return RangeQuerySpec(half_size, half_size)

    def region_at(self, center: Point) -> Rect:
        """The concrete range rectangle ``R(x, y)`` for an issuer located at ``center``."""
        return Rect.from_center(center, self.half_width, self.half_height)

    @property
    def area(self) -> float:
        """Area of the range rectangle."""
        return (2.0 * self.half_width) * (2.0 * self.half_height)


@dataclass(frozen=True)
class ImpreciseRangeQuery:
    """A fully specified imprecise location-dependent range query.

    ``threshold == 0`` corresponds to the unconstrained IPQ / IUQ of
    Definitions 3–4 (return every object with non-zero probability);
    a positive threshold yields the constrained C-IPQ / C-IUQ of
    Definitions 5–6.
    """

    issuer: UncertainObject
    spec: RangeQuerySpec
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must lie in [0, 1], got {self.threshold}")

    @property
    def issuer_region(self) -> Rect:
        """The issuer's uncertainty region ``U0``."""
        return self.issuer.region

    @property
    def is_constrained(self) -> bool:
        """True when a positive probability threshold applies."""
        return self.threshold > 0.0

    def range_at(self, center: Point) -> Rect:
        """Range rectangle for a hypothetical issuer position ``center``."""
        return self.spec.region_at(center)


@dataclass(frozen=True, slots=True)
class QueryAnswer:
    """One tuple of a query result: an object identity and its qualification probability."""

    oid: int
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0 + 1e-9:
            raise ValueError(f"probability out of range: {self.probability}")


@dataclass
class QueryResult:
    """An ordered collection of query answers.

    Answers are kept sorted by decreasing probability so that the "most
    certainly qualifying" objects come first, matching how a location-based
    service would present them.
    """

    answers: list[QueryAnswer] = field(default_factory=list)

    def add(self, oid: int, probability: float) -> None:
        """Append an answer (re-sorting is deferred to :meth:`sort`)."""
        self.answers.append(QueryAnswer(oid=oid, probability=probability))

    def sort(self) -> None:
        """Sort answers by decreasing probability, ties broken by object id."""
        self.answers.sort(key=lambda a: (-a.probability, a.oid))

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[QueryAnswer]:
        return iter(self.answers)

    def probabilities(self) -> dict[int, float]:
        """Return a ``{oid: probability}`` mapping of the answers."""
        return {answer.oid: answer.probability for answer in self.answers}

    def oids(self) -> set[int]:
        """Return the set of object identities in the answer."""
        return {answer.oid for answer in self.answers}

    def above_threshold(self, threshold: float) -> "QueryResult":
        """Return a new result keeping only answers with probability ≥ threshold."""
        filtered = [a for a in self.answers if a.probability >= threshold]
        return QueryResult(answers=filtered)
