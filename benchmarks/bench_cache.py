"""Benchmark: the epoch-keyed result cache under a repeated-query serving load.

Serving workloads repeat themselves — the same issuers ask the same
questions again and again (popular places, periodic refreshes).  This
benchmark replays that pattern as ``rounds`` rounds over a fixed pool of
distinct queries (IPQ / C-IPQ over the California-like points, C-IUQ over
the Long-Beach-like uncertain objects, with both closed-form uniform and
Monte-Carlo Gaussian issuers) and measures the staged pipeline with and
without a :class:`~repro.core.cache.ResultCache`:

* ``steady`` — no mutations: after the first round every lookup is a cache
  hit.  Its ``cache_speedup`` (uncached total over cached total, a ratio of
  two timings on the same machine) is the headline metric guarded by
  ``benchmarks/check_regression.py``.
* ``with_updates`` — each round first applies a small batch of point moves,
  invalidating exactly the entries whose database epoch moved: the cache
  keeps serving the uncertain-target answers (their epoch is untouched)
  while recomputing the point-target ones.

Both flavours run under ``draw_plan="query_keyed"`` so sampled answers are
cacheable, and both assert the cached answers are **bitwise identical** to
the uncached engine's before anything is reported.

Results go to ``BENCH_cache.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_cache.py

Environment knobs: ``REPRO_BENCH_SCALE`` (dataset scale, default 0.25),
``REPRO_BENCH_QUERIES`` (distinct queries in the pool, default 40),
``REPRO_BENCH_ROUNDS`` (serving rounds, default 25),
``REPRO_BENCH_UPDATES`` (point moves per round in the update flavour,
default 5) and ``REPRO_BENCH_REPEATS`` (timing repetitions, default 3).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.cache import ResultCache
from repro.core.engine import (
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.queries import RangeQuery, RangeQuerySpec
from repro.core.updates import UpdateBatch
from repro.datasets.tiger import california_points, long_beach_uncertain_objects
from repro.datasets.workload import QueryWorkload

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache.json"


def _query_pool(count: int) -> list[RangeQuery]:
    """``count`` distinct queries mixing targets, thresholds and pdf routes."""
    spec = RangeQuerySpec.square(300.0)
    uniform = QueryWorkload(
        issuer_half_size=250.0, range_half_size=300.0, issuer_pdf="uniform", seed=4117
    )
    gaussian = QueryWorkload(
        issuer_half_size=250.0, range_half_size=300.0, issuer_pdf="gaussian", seed=4229
    )
    uniform_issuers = list(uniform.issuers(count))
    gaussian_issuers = list(gaussian.issuers(count))
    pool: list[RangeQuery] = []
    for position in range(count):
        flavour = position % 4
        if flavour == 0:
            pool.append(RangeQuery.ipq(uniform_issuers[position], spec))
        elif flavour == 1:
            pool.append(RangeQuery.cipq(gaussian_issuers[position], spec, 0.3))
        elif flavour == 2:
            pool.append(RangeQuery.ciuq(uniform_issuers[position], spec, 0.4))
        else:
            pool.append(RangeQuery.ciuq(gaussian_issuers[position], spec, 0.4))
    return pool


def _move_batches(points, rounds: int, per_round: int) -> list[UpdateBatch]:
    """Deterministic small move batches cycling through the point objects."""
    batches = []
    cursor = 0
    for round_index in range(rounds):
        batch = UpdateBatch()
        for _ in range(per_round):
            obj = points[cursor % len(points)]
            dx = 13.0 * ((round_index % 7) - 3)
            dy = 11.0 * ((cursor % 5) - 2)
            batch.move(obj.oid, x=obj.location.x + dx, y=obj.location.y + dy)
            cursor += 1
        batches.append(batch)
    return batches


def _build_engine(points, uncertain, cache: ResultCache | None) -> ImpreciseQueryEngine:
    config = EngineConfig(draw_plan="query_keyed", cache=cache)
    return ImpreciseQueryEngine(
        point_db=PointDatabase.build(points),
        uncertain_db=UncertainDatabase.build(uncertain),
        config=config,
    )


def _serve(engine: ImpreciseQueryEngine, rounds, pool, update_batches) -> tuple[float, list]:
    """Replay the serving pattern; returns (seconds, per-query answer dicts)."""
    answers = []
    started = time.perf_counter()
    for round_index in range(rounds):
        if update_batches is not None:
            engine.apply_updates(update_batches[round_index])
        for evaluation in engine.evaluate_many(pool):
            answers.append(evaluation.probabilities())
    return time.perf_counter() - started, answers


def _measure(points, uncertain, rounds, pool, update_batches, repeats):
    best_uncached = float("inf")
    best_cached = float("inf")
    hit_rate = 0.0
    entries = 0
    for _ in range(repeats):
        uncached_seconds, expected = _serve(
            _build_engine(points, uncertain, None), rounds, pool, update_batches
        )
        cache = ResultCache(capacity=4 * len(pool))
        cached_seconds, actual = _serve(
            _build_engine(points, uncertain, cache), rounds, pool, update_batches
        )
        assert actual == expected, (
            "cached serving diverged from the uncached engine"
        )
        best_uncached = min(best_uncached, uncached_seconds)
        best_cached = min(best_cached, cached_seconds)
        hit_rate = cache.stats.hit_rate
        entries = len(cache)
    total_queries = rounds * len(pool)
    return {
        "uncached_seconds": best_uncached,
        "cached_seconds": best_cached,
        "cache_speedup": best_uncached / best_cached,
        "hit_rate": hit_rate,
        "cache_entries": entries,
        "uncached_queries_per_second": total_queries / best_uncached,
        "cached_queries_per_second": total_queries / best_cached,
    }


def main() -> None:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
    pool_size = int(os.environ.get("REPRO_BENCH_QUERIES", "40"))
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "25"))
    moves_per_round = int(os.environ.get("REPRO_BENCH_UPDATES", "5"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

    points = california_points(scale=scale)
    uncertain = long_beach_uncertain_objects(scale=scale)
    pool = _query_pool(pool_size)

    steady = _measure(points, uncertain, rounds, pool, None, repeats)
    with_updates = _measure(
        points,
        uncertain,
        rounds,
        pool,
        _move_batches(points, rounds, moves_per_round),
        repeats,
    )

    report = {
        "benchmark": "cache",
        "dataset_scale": scale,
        "points": len(points),
        "uncertain": len(uncertain),
        "distinct_queries": pool_size,
        "rounds": rounds,
        "moves_per_round": moves_per_round,
        "repeats": repeats,
        "steady": steady,
        "with_updates": with_updates,
        "cache_speedup": steady["cache_speedup"],
        "hit_rate": steady["hit_rate"],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
