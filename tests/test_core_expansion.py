"""Unit tests for query expansion and the p-expanded-query."""

import pytest

from repro.geometry.rect import Rect
from repro.core.expansion import (
    minkowski_expanded_query,
    p_expanded_query,
    p_expanded_query_from_catalog,
)
from repro.core.queries import RangeQuerySpec
from repro.uncertainty.catalog import UCatalog
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf

ISSUER_REGION = Rect(1000.0, 1000.0, 1500.0, 1500.0)
SPEC = RangeQuerySpec(half_width=500.0, half_height=300.0)


class TestMinkowskiExpandedQuery:
    def test_expansion_amounts(self):
        expanded = minkowski_expanded_query(ISSUER_REGION, SPEC)
        assert expanded == Rect(500.0, 700.0, 2000.0, 1800.0)

    def test_contains_issuer_region(self):
        expanded = minkowski_expanded_query(ISSUER_REGION, SPEC)
        assert expanded.contains_rect(ISSUER_REGION)

    def test_empty_issuer_region_rejected(self):
        with pytest.raises(ValueError):
            minkowski_expanded_query(Rect.empty(), SPEC)

    def test_zero_extent_query_is_issuer_region(self):
        expanded = minkowski_expanded_query(ISSUER_REGION, RangeQuerySpec(0.0, 0.0))
        assert expanded == ISSUER_REGION


class TestPExpandedQuery:
    def test_zero_p_equals_minkowski_sum(self):
        pdf = UniformPdf(ISSUER_REGION)
        assert p_expanded_query(pdf, SPEC, 0.0) == minkowski_expanded_query(ISSUER_REGION, SPEC)

    def test_shrinks_monotonically_with_p(self):
        pdf = UniformPdf(ISSUER_REGION)
        previous = p_expanded_query(pdf, SPEC, 0.0)
        for p in (0.1, 0.2, 0.3, 0.4, 0.5):
            current = p_expanded_query(pdf, SPEC, p)
            assert previous.contains_rect(current)
            previous = current

    def test_uniform_geometry_matches_lemma_5(self):
        # For a uniform issuer, l0(p) lies p·width from the left edge, so the
        # left side of the p-expanded-query is (xmin + p·width) − w.
        pdf = UniformPdf(ISSUER_REGION)
        p = 0.2
        expanded = p_expanded_query(pdf, SPEC, p)
        assert expanded.xmin == pytest.approx(1000.0 + 0.2 * 500.0 - 500.0)
        assert expanded.xmax == pytest.approx(1500.0 - 0.2 * 500.0 + 500.0)
        assert expanded.ymin == pytest.approx(1000.0 + 0.2 * 500.0 - 300.0)
        assert expanded.ymax == pytest.approx(1500.0 - 0.2 * 500.0 + 300.0)

    def test_gaussian_expanded_query_smaller_than_uniform(self):
        # Gaussian mass is concentrated centrally, so its p-bounds (and the
        # derived expanded query) are tighter than the uniform ones.
        uniform = p_expanded_query(UniformPdf(ISSUER_REGION), SPEC, 0.2)
        gaussian = p_expanded_query(TruncatedGaussianPdf(ISSUER_REGION), SPEC, 0.2)
        assert uniform.contains_rect(gaussian)
        assert gaussian.area < uniform.area

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            p_expanded_query(UniformPdf(ISSUER_REGION), SPEC, -0.1)


class TestPExpandedQueryFromCatalog:
    def test_exact_level_match(self):
        pdf = UniformPdf(ISSUER_REGION)
        catalog = UCatalog.build(pdf)
        rect, level = p_expanded_query_from_catalog(catalog, SPEC, 0.3)
        assert level == 0.3
        assert rect == p_expanded_query(pdf, SPEC, 0.3)

    def test_rounds_down_to_stored_level(self):
        pdf = UniformPdf(ISSUER_REGION)
        catalog = UCatalog.build(pdf)
        rect, level = p_expanded_query_from_catalog(catalog, SPEC, 0.37)
        assert level == 0.3
        # The rounded query must enclose the exact one (conservative).
        assert rect.contains_rect(p_expanded_query(pdf, SPEC, 0.37))

    def test_threshold_below_smallest_level_is_rejected(self):
        # Rounding up would shrink the window and could wrongly prune
        # qualifying objects, so the lookup refuses instead.
        pdf = UniformPdf(ISSUER_REGION)
        catalog = UCatalog.build(pdf, [0.1, 0.2])
        with pytest.raises(ValueError):
            p_expanded_query_from_catalog(catalog, SPEC, 0.05)

    def test_invalid_threshold_rejected(self):
        catalog = UCatalog.build(UniformPdf(ISSUER_REGION))
        with pytest.raises(ValueError):
            p_expanded_query_from_catalog(catalog, SPEC, 1.2)
