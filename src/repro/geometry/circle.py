"""Circles — the non-rectangular uncertainty-region extension.

The paper's conclusion lists "queries and uncertain regions with
non-rectangular shapes" as future work.  Circles are the most common such
shape in the location-privacy literature (a cloaking disc around the true
position), so the reproduction supports them as an optional region type with
conservative rectangular bounds.
"""

from __future__ import annotations
from repro.errors import GeometryError

import math
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Circle:
    """A closed disc with centre ``center`` and radius ``radius``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise GeometryError(f"radius must be non-negative, got {self.radius}")

    @property
    def area(self) -> float:
        """Area of the disc."""
        return math.pi * self.radius * self.radius

    def bounding_rect(self) -> Rect:
        """Smallest axis-parallel rectangle containing the disc."""
        return Rect.from_center(self.center, self.radius, self.radius)

    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies inside the closed disc."""
        return self.center.distance_to(point) <= self.radius

    def overlaps_rect(self, rect: Rect) -> bool:
        """True when the disc and the rectangle share at least one point."""
        if rect.is_empty:
            return False
        return rect.min_distance_to_point(self.center) <= self.radius

    def contains_rect(self, rect: Rect) -> bool:
        """True when the rectangle lies entirely inside the disc."""
        if rect.is_empty:
            return True
        return all(self.contains_point(corner) for corner in rect.corners())

    def intersection_area_with_rect(self, rect: Rect, *, resolution: int = 256) -> float:
        """Area of the intersection of the disc with an axis-parallel rectangle.

        Computed by 1-D numerical integration over x of the chord length
        clipped to the rectangle's y-interval.  ``resolution`` is the number of
        integration strips; the result converges quadratically because the
        integrand is piecewise smooth.
        """
        if rect.is_empty or self.radius == 0.0:
            return 0.0
        clipped = rect.intersect(self.bounding_rect())
        if clipped.is_empty:
            return 0.0
        x0, x1 = clipped.xmin, clipped.xmax
        if x1 <= x0:
            return 0.0
        total = 0.0
        step = (x1 - x0) / resolution
        for i in range(resolution):
            x_mid = x0 + (i + 0.5) * step
            dx = x_mid - self.center.x
            if abs(dx) >= self.radius:
                continue
            half_chord = math.sqrt(self.radius * self.radius - dx * dx)
            chord_low = self.center.y - half_chord
            chord_high = self.center.y + half_chord
            low = max(chord_low, clipped.ymin)
            high = min(chord_high, clipped.ymax)
            if high > low:
                total += (high - low) * step
        return total
