# lint-fixture-path: repro/core/example.py
"""All draws derive from draw-plan seeds via the Generator API."""

import numpy as np


def per_oid_rng(rng_seed, query_seq, oid):
    return np.random.default_rng(
        np.random.SeedSequence((int(rng_seed), int(query_seq), int(oid)))
    )


def jitter(values, rng_seed):
    rng = np.random.default_rng(rng_seed)
    return values + rng.random(len(values))
