"""Ablation — contribution of each C-IUQ pruning strategy (Section 5.2).

Not a figure of the paper, but a study of the design choice it motivates:
how much does each of the three pruning strategies contribute on its own,
and how much does combining them add?  The index window is pinned to the
Minkowski sum so that differences are attributable to the object-level
strategies alone.
"""

import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import EngineConfig, ImpreciseQueryEngine
from repro.core.pruning import ALL_STRATEGIES, PruningStrategy

from benchmarks.conftest import issuer_for

THRESHOLD = 0.6

SUBSETS = {
    "none": (),
    "p_bound": (PruningStrategy.P_BOUND,),
    "p_expanded": (PruningStrategy.P_EXPANDED_QUERY,),
    "product": (PruningStrategy.PRODUCT_BOUND,),
    "all": ALL_STRATEGIES,
}


@pytest.mark.parametrize("subset", sorted(SUBSETS))
def test_ciuq_strategy_subset(benchmark, uncertain_db_rtree, subset):
    """C-IUQ at Qp = 0.6 with only the named strategy subset enabled."""
    engine = ImpreciseQueryEngine(
        uncertain_db=uncertain_db_rtree,
        config=EngineConfig(
            use_p_expanded_query=False,
            use_pti_pruning=False,
            ciuq_strategies=SUBSETS[subset],
        ),
    )
    issuer, spec = issuer_for(250.0, threshold=THRESHOLD)
    result = benchmark(lambda: engine.evaluate(RangeQuery.ciuq(issuer, spec, THRESHOLD)))
    assert all(answer.probability >= THRESHOLD for answer in result)
