"""Epoch-keyed LRU result cache shared by all query engines.

Serving workloads repeat themselves: the same ``(issuer, spec, threshold,
target)`` lookups arrive again and again (the C-IUQ pruner cache already
exploits exactly this repetition within a batch).  The
:class:`ResultCache` extends that observation across batches and across
mutations: the staged pipeline (:mod:`repro.core.pipeline`) consults it as a
first-class stage before running the candidate → prune → evaluate flow, and
fills it afterwards.

Correctness rests on three key components, combined by
:func:`repro.core.pipeline` / :class:`~repro.core.parallel.ParallelEngine`
into the lookup key:

* an **epoch component** — the owning database's epoch counter for the
  serial engine, or the *per-shard epoch vector* of the routed shards for
  sharded sessions.  Every mutation bumps the owning epoch, so entries
  written against old data can simply never be *found* again (no explicit
  invalidation pass; stale entries age out of the LRU).  Per-shard epochs
  give sharded sessions fine-grained invalidation: a mutation in one shard
  does not evict answers whose routed shards were untouched.
* a **query component** — the issuer's identity plus the query shape
  (spec, threshold, target / sample count).  Issuers are compared by
  identity; every entry pins a strong reference to its issuer so a recycled
  ``id()`` can never alias a dead object's key.
* a **config fingerprint** — every :class:`~repro.core.engine.EngineConfig`
  field that can influence an answer, so engines sharing one cache but
  running different configurations can never serve each other's results.

The cache itself is a plain ``OrderedDict`` LRU with hit / miss / eviction
counters (surfaced through :meth:`repro.core.session.Session.stats`).  It is
not thread-safe; share it across engines within one process/thread, not
across threads.
"""

from __future__ import annotations
from repro.core.errors import ConfigurationError

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Hashable

from repro.core.queries import QueryAnswer, QueryResult
from repro.core.statistics import EvaluationStatistics
from repro.index.iostats import IOStatistics


def fill_allowed(draw_plan: str, statistics: EvaluationStatistics) -> bool:
    """May a freshly computed answer be stored for later replay?

    The replay-determinism gate shared by the serial pipeline and the
    parallel executor: draw-free evaluations are pure functions of the
    database state (the epoch key covers that); sampled ones additionally
    need draws that do not depend on the query's position in the workload,
    which only the ``query_keyed`` plan guarantees.
    """
    return draw_plan == "query_keyed" or statistics.monte_carlo_samples == 0


def copy_statistics(stats: EvaluationStatistics) -> EvaluationStatistics:
    """An independent copy of per-query statistics (own dict, own IO counters).

    Cache entries must not share mutable state with the statistics the
    engines hand out: the parallel merger mutates ``results_returned`` and
    merges ``io`` in place, which would silently corrupt a shared entry.
    """
    io = IOStatistics()
    io.merge(stats.io)
    return replace(stats, pruned=dict(stats.pruned), io=io)


@dataclass
class CacheStats:
    """Observability counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """A plain-dict snapshot for monitoring endpoints."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class CachedAnswer:
    """One stored evaluation: the ranked answers plus the work that produced them.

    ``issuer`` pins the query issuer object so that the ``id(issuer)``
    embedded in the entry's key cannot be recycled by the allocator while
    the entry is alive; a hit additionally verifies the identity.
    """

    issuer: Any
    answers: tuple[QueryAnswer, ...]
    statistics: EvaluationStatistics

    def materialise(self) -> tuple[QueryResult, EvaluationStatistics]:
        """Fresh, caller-owned ``(result, statistics)`` built from the entry."""
        return (
            QueryResult(answers=list(self.answers)),
            copy_statistics(self.statistics),
        )


@dataclass
class ResultCache:
    """A bounded LRU mapping pipeline cache keys to :class:`CachedAnswer` entries.

    ``capacity`` bounds the number of entries; inserting beyond it evicts the
    least-recently-used entry (lookups refresh recency).  Keys embed an epoch
    component, so mutations invalidate by *unreachability* — superseded
    entries linger until the LRU ages them out, which is why a finite
    capacity is required.
    """

    capacity: int = 1024
    stats: CacheStats = field(default_factory=CacheStats, init=False)
    _entries: "OrderedDict[Hashable, CachedAnswer]" = field(
        default_factory=OrderedDict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if isinstance(self.capacity, bool) or not isinstance(self.capacity, int):
            raise ConfigurationError(
                f"cache capacity must be an integer, got {self.capacity!r}"
            )
        if self.capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {self.capacity}"
            )

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable, issuer: Any) -> CachedAnswer | None:
        """The entry under ``key`` whose pinned issuer *is* ``issuer``, if any.

        Counts a hit or a miss; a hit refreshes the entry's LRU recency.  An
        entry whose pinned issuer differs (an ``id()`` collision across
        issuer lifetimes — possible only if the entry's issuer was freed,
        which pinning prevents) is treated as a miss and dropped.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.issuer is not issuer:
            del self._entries[key]
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def store(
        self,
        key: Hashable,
        issuer: Any,
        result: QueryResult,
        statistics: EvaluationStatistics,
    ) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail past capacity.

        The answers and statistics are snapshotted, so later in-place
        mutation by the caller cannot corrupt the entry.
        """
        self._entries[key] = CachedAnswer(
            issuer=issuer,
            answers=tuple(result.answers),
            statistics=copy_statistics(statistics),
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the counters keep their history)."""
        self._entries.clear()
