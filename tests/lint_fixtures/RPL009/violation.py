# lint-fixture-path: repro/core/example.py
"""Mutating statistics reached through another object."""


def merge(evaluations):
    merged = evaluations[0].statistics
    for evaluation in evaluations[1:]:
        merged.candidates_examined += evaluation.statistics.candidates_examined
        merged.pruned["expansion"] += 1
    return merged


def stamp(evaluation, elapsed):
    evaluation.statistics.response_time = elapsed
