"""Spawn a local fleet of shard daemons for tests, benchmarks and demos.

:class:`LocalShardCluster` starts one ``shardd`` process per shard with the
``spawn`` multiprocessing context (no forked locks or event loops; the same
start method CI exercises) on ephemeral loopback ports, and reports the
bound addresses back over a pipe.  The cluster owns the processes: closing
it terminates them.  Real deployments run ``python -m repro.rpc.shardd`` on
each machine instead and hand the addresses to
:meth:`repro.core.session.Session.distributed` directly.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from multiprocessing.connection import Connection

from repro.core.errors import EngineStateError

_SPAWN_TIMEOUT_SECONDS = 60.0


def _shardd_process(bind_host: str, conn: Connection) -> None:
    """Process target: serve one daemon, reporting its bound port first."""
    # Imports happen here, inside the spawned interpreter, so the parent's
    # module state never leaks in — only the (host, pipe) pair is pickled.
    from repro.rpc.shardd import ShardHost, serve

    async def run() -> None:
        host = ShardHost()
        server = await serve(host, bind_host, 0)
        conn.send(server.sockets[0].getsockname()[1])
        conn.close()
        async with server:
            await host.shutdown_requested.wait()

    asyncio.run(run())


class LocalShardCluster:
    """A fleet of locally spawned shard daemons on ephemeral loopback ports."""

    def __init__(
        self,
        processes: list[multiprocessing.process.BaseProcess],
        addrs: list[tuple[str, int]],
    ) -> None:
        self._processes = processes
        self._addrs = addrs

    @classmethod
    def spawn(cls, count: int, *, host: str = "127.0.0.1") -> "LocalShardCluster":
        """Start ``count`` daemons and wait for all of them to bind."""
        context = multiprocessing.get_context("spawn")
        processes = []
        pipes = []
        # Start every process before reading any port: spawned interpreters
        # pay their import cost concurrently instead of one after another.
        for _ in range(count):
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_shardd_process, args=(host, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            processes.append(process)
            pipes.append(parent_conn)
        addrs = []
        try:
            for process, pipe in zip(processes, pipes):
                if not pipe.poll(_SPAWN_TIMEOUT_SECONDS):
                    raise EngineStateError(
                        "shardd worker did not report a port within "
                        f"{_SPAWN_TIMEOUT_SECONDS:.0f}s "
                        f"(pid={process.pid}, alive={process.is_alive()})"
                    )
                addrs.append((host, int(pipe.recv())))
        except BaseException:
            for process in processes:
                process.terminate()
            raise
        finally:
            for pipe in pipes:
                pipe.close()
        return cls(processes, addrs)

    @property
    def addrs(self) -> list[tuple[str, int]]:
        """The ``(host, port)`` address of every daemon, in shard order."""
        return list(self._addrs)

    def close(self) -> None:
        """Terminate every daemon process and reap it."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10.0)
        self._processes = []

    def __enter__(self) -> "LocalShardCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
