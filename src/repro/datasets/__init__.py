"""Datasets and query workloads for the experiments.

The paper evaluates on two TIGER/Line extracts: *California* (62 K points,
used as the point-object database) and *Long Beach* (53 K rectangles, used as
the uncertain-object database), both normalised to a 10 000 × 10 000 space.
The raw TIGER files are not redistributable here, so
:mod:`repro.datasets.tiger` generates deterministic synthetic datasets with
the same cardinality, space and spatial skew (clusters along road-like
corridors over a sparse background); see DESIGN.md for the substitution
rationale.  Scaled-down variants keep the test-suite and benchmark runtimes
reasonable.
"""

from repro.datasets.synthetic import (
    uniform_points,
    clustered_points,
    uniform_rectangles,
    clustered_rectangles,
)
from repro.datasets.tiger import (
    DATA_SPACE,
    california_points,
    long_beach_uncertain_objects,
)
from repro.datasets.partition import (
    PARTITION_METHODS,
    grid_assignments,
    mbr_centers,
    median_assignments,
    partition_assignments,
)
from repro.datasets.workload import QueryWorkload, UpdateWorkload
from repro.datasets.io import (
    save_point_objects,
    load_point_objects,
    save_uncertain_objects,
    load_uncertain_objects,
)

__all__ = [
    "uniform_points",
    "clustered_points",
    "uniform_rectangles",
    "clustered_rectangles",
    "DATA_SPACE",
    "california_points",
    "long_beach_uncertain_objects",
    "QueryWorkload",
    "UpdateWorkload",
    "PARTITION_METHODS",
    "grid_assignments",
    "mbr_centers",
    "median_assignments",
    "partition_assignments",
    "save_point_objects",
    "load_point_objects",
    "save_uncertain_objects",
    "load_uncertain_objects",
]
