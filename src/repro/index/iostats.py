"""I/O accounting shared by all spatial indexes.

Absolute wall-clock timings from the paper's 2007 SunFire server do not
transfer to a Python reproduction, so every index additionally reports
machine-independent counters: how many index nodes (pages) were touched and
how many stored entries were examined while answering a query.  The
experiment harness reports both the counters and the wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStatistics:
    """Mutable access counters for a single index.

    The counters accumulate across queries until :meth:`reset` is called; the
    evaluation engines snapshot them before and after each query to obtain
    per-query costs.
    """

    node_accesses: int = 0
    leaf_accesses: int = 0
    internal_accesses: int = 0
    entries_examined: int = 0
    objects_returned: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.node_accesses = 0
        self.leaf_accesses = 0
        self.internal_accesses = 0
        self.entries_examined = 0
        self.objects_returned = 0

    def record_node(self, *, is_leaf: bool) -> None:
        """Record a visit to one index node (page read)."""
        self.node_accesses += 1
        if is_leaf:
            self.leaf_accesses += 1
        else:
            self.internal_accesses += 1

    def record_entries(self, count: int) -> None:
        """Record examination of ``count`` stored entries."""
        self.entries_examined += count

    def record_results(self, count: int) -> None:
        """Record ``count`` objects returned to the caller."""
        self.objects_returned += count

    def snapshot(self) -> "IOStatistics":
        """Return an immutable-ish copy of the current counter values."""
        return IOStatistics(
            node_accesses=self.node_accesses,
            leaf_accesses=self.leaf_accesses,
            internal_accesses=self.internal_accesses,
            entries_examined=self.entries_examined,
            objects_returned=self.objects_returned,
        )

    def difference_since(self, before: "IOStatistics") -> "IOStatistics":
        """Counters accumulated since the ``before`` snapshot."""
        return IOStatistics(
            node_accesses=self.node_accesses - before.node_accesses,
            leaf_accesses=self.leaf_accesses - before.leaf_accesses,
            internal_accesses=self.internal_accesses - before.internal_accesses,
            entries_examined=self.entries_examined - before.entries_examined,
            objects_returned=self.objects_returned - before.objects_returned,
        )

    def merge(self, other: "IOStatistics") -> None:
        """Add another counter set into this one (used when combining indexes)."""
        self.node_accesses += other.node_accesses
        self.leaf_accesses += other.leaf_accesses
        self.internal_accesses += other.internal_accesses
        self.entries_examined += other.entries_examined
        self.objects_returned += other.objects_returned
