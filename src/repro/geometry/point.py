"""Two-dimensional points."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def __iter__(self):
        yield self.x
        yield self.y

    def translate(self, dx: float, dy: float) -> "Point":
        """Return the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev_distance_to(self, other: "Point") -> float:
        """L∞ distance to ``other`` (the natural metric for square ranges)."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
