"""Unit tests for the answer-quality metrics."""

import pytest

from repro.core.quality import (
    certainty_score,
    expected_cardinality,
    expected_precision,
    expected_recall,
    f_score,
    threshold_sweep,
)
from repro.core.queries import QueryResult


def _result(probabilities: dict[int, float]) -> QueryResult:
    result = QueryResult()
    for oid, probability in probabilities.items():
        result.add(oid, probability)
    result.sort()
    return result


class TestExpectedCardinality:
    def test_empty(self):
        assert expected_cardinality(QueryResult()) == 0.0

    def test_sums_probabilities(self):
        assert expected_cardinality(_result({1: 0.5, 2: 0.25})) == pytest.approx(0.75)


class TestExpectedPrecision:
    def test_empty_is_one(self):
        assert expected_precision(QueryResult()) == 1.0

    def test_mean_probability(self):
        assert expected_precision(_result({1: 1.0, 2: 0.5})) == pytest.approx(0.75)

    def test_all_certain(self):
        assert expected_precision(_result({1: 1.0, 2: 1.0})) == 1.0


class TestExpectedRecall:
    def test_full_result_has_recall_one(self):
        reference = _result({1: 0.9, 2: 0.3})
        assert expected_recall(reference, reference) == pytest.approx(1.0)

    def test_dropping_mass_lowers_recall(self):
        reference = _result({1: 0.9, 2: 0.3, 3: 0.3})
        filtered = reference.above_threshold(0.5)
        assert expected_recall(filtered, reference) == pytest.approx(0.9 / 1.5)

    def test_empty_reference(self):
        assert expected_recall(QueryResult(), QueryResult()) == 1.0


class TestCertaintyScore:
    def test_empty_is_one(self):
        assert certainty_score(QueryResult()) == 1.0

    def test_certain_answers_score_one(self):
        assert certainty_score(_result({1: 1.0, 2: 1.0})) == pytest.approx(1.0)

    def test_half_probability_scores_zero(self):
        assert certainty_score(_result({1: 0.5})) == pytest.approx(0.0)

    def test_monotone_in_decisiveness(self):
        assert certainty_score(_result({1: 0.9})) > certainty_score(_result({1: 0.7}))


class TestFScore:
    def test_perfect_result(self):
        reference = _result({1: 1.0, 2: 1.0})
        assert f_score(reference, reference) == pytest.approx(1.0)

    def test_rejects_non_positive_beta(self):
        with pytest.raises(ValueError):
            f_score(QueryResult(), QueryResult(), beta=0.0)

    def test_precision_recall_trade_off(self):
        reference = _result({1: 0.95, 2: 0.9, 3: 0.2, 4: 0.1})
        low = reference.above_threshold(0.0)
        high = reference.above_threshold(0.8)
        assert expected_precision(high) > expected_precision(low)
        assert expected_recall(high, reference) < expected_recall(low, reference)


class TestThresholdSweep:
    def test_rows_and_monotonicity(self):
        reference = _result({1: 0.95, 2: 0.7, 3: 0.4, 4: 0.1})
        rows = threshold_sweep(reference, [0.0, 0.3, 0.6, 0.9])
        assert [row[0] for row in rows] == [0.0, 0.3, 0.6, 0.9]
        precisions = [row[1] for row in rows]
        recalls = [row[2] for row in rows]
        assert precisions == sorted(precisions)
        assert recalls == sorted(recalls, reverse=True)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            threshold_sweep(QueryResult(), [1.5])
