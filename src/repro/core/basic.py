"""The paper's *basic* evaluation method (Section 3.3).

Equations 2 and 4 define qualification probabilities directly: conceptually
every point of the issuer's uncertainty region is examined, a range query is
formed at that point, and the per-point result is integrated under the
issuer's pdf.  In practice the region is discretised into sample points, so
the cost per object is (number of issuer samples) × (cost of one containment
or rectangle-probability test).  This is the baseline the enhanced method of
Section 4 is compared against in Figure 8.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry.point import Point
from repro.core.expansion import minkowski_expanded_query
from repro.core.queries import ImpreciseRangeQuery, QueryResult, RangeQuerySpec
from repro.core.statistics import EvaluationStatistics
from repro.uncertainty.pdf import UncertaintyPdf
from repro.uncertainty.region import PointObject, UncertainObject

#: Default number of issuer sample points used by the basic method.  The
#: paper notes "a large number of sampling points will be needed to produce an
#: accurate answer"; a 20×20 grid (400 points) keeps the baseline honest
#: without making the benchmark unbearably slow.
DEFAULT_ISSUER_SAMPLES = 400


def _issuer_sample_grid(issuer_pdf: UncertaintyPdf, samples: int) -> list[tuple[Point, float]]:
    """Deterministic issuer discretisation: midpoints of a regular grid.

    Returns ``(point, weight)`` pairs where the weight is the pdf mass of the
    grid cell (density at the midpoint × cell area), renormalised to sum to 1
    so discretisation error does not bias the probabilities.
    """
    region = issuer_pdf.region
    per_axis = max(1, int(round(samples ** 0.5)))
    xs = np.linspace(region.xmin, region.xmax, per_axis + 1)
    ys = np.linspace(region.ymin, region.ymax, per_axis + 1)
    x_mid = (xs[:-1] + xs[1:]) / 2.0
    y_mid = (ys[:-1] + ys[1:]) / 2.0
    cell_area = (region.width / per_axis) * (region.height / per_axis)
    weighted: list[tuple[Point, float]] = []
    total = 0.0
    for y in y_mid:
        for x in x_mid:
            weight = issuer_pdf.density(float(x), float(y)) * cell_area
            if weight > 0.0:
                weighted.append((Point(float(x), float(y)), weight))
                total += weight
    if total <= 0.0:
        return []
    return [(point, weight / total) for point, weight in weighted]


def basic_ipq_probability(
    issuer_pdf: UncertaintyPdf,
    spec: RangeQuerySpec,
    location: Point,
    *,
    issuer_samples: int = DEFAULT_ISSUER_SAMPLES,
) -> float:
    """Equation 2 evaluated by discretising the issuer's uncertainty region."""
    total = 0.0
    for sample_point, weight in _issuer_sample_grid(issuer_pdf, issuer_samples):
        if spec.region_at(sample_point).contains_point(location):
            total += weight
    return min(1.0, total)


def basic_iuq_probability(
    issuer_pdf: UncertaintyPdf,
    target: UncertainObject,
    spec: RangeQuerySpec,
    *,
    issuer_samples: int = DEFAULT_ISSUER_SAMPLES,
) -> float:
    """Equation 4 evaluated by discretising the issuer's uncertainty region.

    For every issuer sample the inner probability (Equation 3) is the target
    pdf's mass inside the range centred at the sample — itself potentially a
    numerical integration for pdfs without closed forms, which is exactly why
    the basic method is expensive.
    """
    total = 0.0
    for sample_point, weight in _issuer_sample_grid(issuer_pdf, issuer_samples):
        inner = target.pdf.probability_in_rect(spec.region_at(sample_point))
        total += weight * inner
    return min(1.0, total)


class BasicEvaluator:
    """End-to-end basic evaluation of IPQ and IUQ over in-memory object lists.

    By default candidates are still filtered with the Minkowski-sum expanded
    query so that the comparison against the enhanced method isolates the
    cost of the probability computation (the situation in Figure 8); pass
    ``use_expansion_filter=False`` to also disable the filter and fall back
    to examining every object.
    """

    def __init__(
        self,
        *,
        issuer_samples: int = DEFAULT_ISSUER_SAMPLES,
        use_expansion_filter: bool = True,
    ) -> None:
        if issuer_samples <= 0:
            raise ValueError("issuer_samples must be positive")
        self._issuer_samples = issuer_samples
        self._use_expansion_filter = use_expansion_filter

    def evaluate_ipq(
        self, query: ImpreciseRangeQuery, objects: list[PointObject]
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Evaluate an IPQ over point objects with the basic method."""
        started = time.perf_counter()
        stats = EvaluationStatistics()
        expanded = minkowski_expanded_query(query.issuer_region, query.spec)
        result = QueryResult()
        for obj in objects:
            if self._use_expansion_filter and not expanded.contains_point(obj.location):
                continue
            stats.candidates_examined += 1
            stats.probability_computations += 1
            probability = basic_ipq_probability(
                query.issuer.pdf, query.spec, obj.location, issuer_samples=self._issuer_samples
            )
            if probability > 0.0 and probability >= query.threshold:
                result.add(obj.oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    def evaluate_iuq(
        self, query: ImpreciseRangeQuery, objects: list[UncertainObject]
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Evaluate an IUQ over uncertain objects with the basic method."""
        started = time.perf_counter()
        stats = EvaluationStatistics()
        expanded = minkowski_expanded_query(query.issuer_region, query.spec)
        result = QueryResult()
        for obj in objects:
            if self._use_expansion_filter and not expanded.overlaps(obj.region):
                continue
            stats.candidates_examined += 1
            stats.probability_computations += 1
            probability = basic_iuq_probability(
                query.issuer.pdf, obj, query.spec, issuer_samples=self._issuer_samples
            )
            if probability > 0.0 and probability >= query.threshold:
                result.add(obj.oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats
