"""Location-uncertainty model (Section 3.1 of the paper).

An uncertain object is described by a closed *uncertainty region* and a
probability density function that is zero outside the region.  This package
provides the pdf implementations (uniform, truncated Gaussian, histogram,
uniform-over-circle), the object wrappers (point objects and uncertain
objects), the pre-computed *p-bounds* and *U-catalogs* used by the
threshold-pruning machinery of Section 5, and Monte-Carlo / grid sampling
utilities for pdfs without closed-form rectangle probabilities.
"""

from repro.uncertainty.pdf import (
    UncertaintyPdf,
    UniformPdf,
    TruncatedGaussianPdf,
    HistogramPdf,
    UniformCirclePdf,
)
from repro.uncertainty.region import PointObject, UncertainObject
from repro.uncertainty.pbound import PBound, compute_pbound, pbound_rect
from repro.uncertainty.catalog import UCatalog, DEFAULT_CATALOG_LEVELS
from repro.uncertainty.sampling import (
    monte_carlo_rect_probability,
    grid_rect_probability,
    sample_array,
    sample_points,
)

__all__ = [
    "UncertaintyPdf",
    "UniformPdf",
    "TruncatedGaussianPdf",
    "HistogramPdf",
    "UniformCirclePdf",
    "PointObject",
    "UncertainObject",
    "PBound",
    "compute_pbound",
    "pbound_rect",
    "UCatalog",
    "DEFAULT_CATALOG_LEVELS",
    "monte_carlo_rect_probability",
    "grid_rect_probability",
    "sample_array",
    "sample_points",
]
