"""RPL001 — derived-state memos must be epoch-guarded.

PR 4 shipped the motivating bug: ``PointDatabase`` memoized its columnar
snapshot once and kept serving it after inserts/moves, because nothing tied
the cached value to the database's mutation epoch.  The repaired idiom pairs
every memo attribute with an ``*_epoch`` stamp::

    if self._columnar is None or self._columnar_epoch != self._epoch:
        self._columnar = ColumnarPoints(self.objects)
        self._columnar_epoch = self._epoch

This rule finds the *lazy-memo* shape — ``if self._x is None: self._x = …``
on an attribute whose name marks it as derived data (columnar / positions /
snapshot / cache / memo / sampler) — and requires the guarding function to
reference an epoch somewhere.  It also flags ``functools.lru_cache`` /
``functools.cache`` on *methods*: a per-instance cache keyed by ``self``
both leaks instances and ignores epochs (module-level functions over
immutable arguments, like the issuer-grid discretisation, are fine).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register
from repro.tools.lint.rules._ast_helpers import (
    first_argument,
    functions,
    referenced_names,
    self_attribute,
)

#: Attribute-name fragments that mark a memo as *derived data* (as opposed
#: to a lazily-created resource such as a pool or socket, which has no
#: epoch to key on).
_DERIVED_FRAGMENTS = ("columnar", "position", "snapshot", "cache", "memo", "sampler")

_CACHE_DECORATORS = {"lru_cache", "cache", "cached_property"}


def _is_derived_attr(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in _DERIVED_FRAGMENTS)


def _memo_guard_attrs(test: ast.expr) -> set[str]:
    """Attrs ``X`` for which ``test`` contains ``self.X is None``."""
    attrs: set[str] = set()
    for node in ast.walk(test):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, ast.Is) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(item, ast.Constant) and item.value is None
                for item in operands
            ):
                for item in operands:
                    attr = self_attribute(item)
                    if attr is not None:
                        attrs.add(attr)
    return attrs


def _decorator_cache_name(decorator: ast.expr) -> str | None:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Attribute):
        name = target.attr
    elif isinstance(target, ast.Name):
        name = target.id
    else:
        return None
    return name if name in _CACHE_DECORATORS else None


@register
class EpochGuardedCaches(Rule):
    rule_id = "RPL001"
    severity = "error"
    description = (
        "instance memos of derived data (columnar/positions/snapshot/…) must "
        "be invalidated by an epoch check; lru_cache on methods is forbidden"
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_package("repro/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        # Methods are functions lexically inside a class body.
        method_names: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_names.add(id(stmt))

        for func in functions(module.tree):
            for decorator in func.decorator_list:
                cache_name = _decorator_cache_name(decorator)
                if cache_name is None:
                    continue
                is_method = id(func) in method_names and first_argument(func) in (
                    "self",
                    "cls",
                )
                if cache_name == "cached_property" or is_method:
                    yield (
                        decorator.lineno,
                        f"@{cache_name} on method {func.name!r}: per-instance "
                        "caches ignore the mutation epoch and pin instances "
                        "alive; memoize with an explicit epoch-keyed attribute",
                    )

            names = referenced_names(func)
            has_epoch = any("epoch" in name.lower() for name in names)
            for node in ast.walk(func):
                if not isinstance(node, ast.If):
                    continue
                guarded = _memo_guard_attrs(node.test)
                if not guarded:
                    continue
                filled = {
                    attr
                    for stmt in ast.walk(node)
                    if isinstance(stmt, ast.Assign)
                    for target in stmt.targets
                    if (attr := self_attribute(target)) is not None
                }
                for attr in sorted(guarded & filled):
                    if _is_derived_attr(attr) and not has_epoch:
                        yield (
                            node.lineno,
                            f"memo of derived state 'self.{attr}' has no epoch "
                            "guard: pair it with an '*_epoch' stamp checked in "
                            "the same condition, or it will serve stale data "
                            "after mutations (the PR 4 columnar-cache bug)",
                        )
