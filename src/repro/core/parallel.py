"""Shard-parallel workload execution.

:class:`ParallelEngine` runs whole workloads against a
:class:`~repro.core.sharding.ShardedDatabase`: a shard planner routes every
query to only the shards its expanded window (Minkowski-expanded for range
queries, best-distance-bounded for nearest-neighbour queries) can touch, the
routed per-shard batches execute either in-process or on a pool of forked
worker processes, and the per-shard partial results are merged back into
ordinary :class:`~repro.core.queries.Evaluation` envelopes — answers in
global oid order, work counters summed, and per-shard wall-clock attribution
attached (:class:`ParallelEvaluation.shard_timings`).

Per-shard execution is the *same staged pipeline* the serial engine runs
(:mod:`repro.core.pipeline`, reached through
:meth:`~repro.core.sharding.ShardedDatabase.execute_on_shard`): this engine
owns no evaluation code of its own, only routing, the worker pool and the
merge.  The result-cache stage, however, runs **here in the parent**, not
inside the shards: a cache entry must hold a whole-query answer, and fills
performed inside forked workers would die with the worker anyway.  Cache
keys embed the *per-shard epoch vector* of the routed shards (plus the
sharded database's structure version), so a mutation in one shard does not
evict answers that only touched others — the fine-grained invalidation a
single global epoch cannot give.

Results are **identical** to a single-shard
:class:`~repro.core.engine.ImpreciseQueryEngine` running the same workload
under a position-independent draw plan (``draw_plan="per_oid"``, which this
engine forces when handed the streaming plan, or ``"query_keyed"``): the
shards partition the objects, pruning decisions are per-object, and every
Monte-Carlo draw is a pure function of ``(rng_seed, draw token, oid)`` — so
sampled probabilities match bitwise no matter how the objects are spread
over shards or how many workers run them.  One caveat applies to
nearest-neighbour queries: when two objects are at *exactly* the same
distance from a sampled position, the sharded merge breaks the tie towards
the smaller oid while the single-shard engine keeps whichever its R-tree
traversal found first.  Under the continuous pdfs used throughout this
reproduction exact ties have probability zero; datasets with symmetric,
grid-aligned point layouts can hit them.

The process pool uses the ``fork`` start method so workers inherit the shard
databases (objects, indexes and columnar snapshots) without pickling them;
on platforms without ``fork`` the engine transparently degrades to serial
in-process execution.  Worker processes are reused across
:meth:`ParallelEngine.evaluate_many` calls; call :meth:`ParallelEngine.close`
(or use the engine as a context manager) to release them.

The engine also carries the live-mutation surface (``insert`` / ``delete``
/ ``move`` / ``apply_updates``, with :class:`~repro.core.updates.UpdateBatch`
items accepted inline in ``evaluate_many``): mutations route to the owning
shard through :class:`ShardedDatabase` and recycle the forked worker pool,
since already-forked workers hold a pre-mutation memory snapshot.  Updates
consume no query sequence numbers, so the per-oid parity guarantee extends
to live data: a mutated sharded database answers bitwise-identically to a
from-scratch rebuild of the same final collection.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.core.cache import fill_allowed
from repro.core.engine import EngineConfig
from repro.core.expansion import minkowski_expanded_query
from repro.core.nearest import nn_query_draws
from repro.core.pipeline import DEFAULT_NN_SAMPLES, partition_workload
from repro.core.plan import query_cache_key, resolve_draw_token
from repro.core.queries import (
    Evaluation,
    NearestNeighborQuery,
    Query,
    QueryResult,
    RangeQuery,
)
from repro.core.sharding import Shard, ShardedDatabase
from repro.core.statistics import EvaluationStatistics
from repro.core.updates import (
    UpdateBatch,
    apply_update_op,
    pick_mutation_database,
    resolve_move_target,
)
from repro.uncertainty.region import PointObject, UncertainObject

#: Engines visible to forked pool workers, keyed by registration token.  The
#: parent registers an engine *before* creating its pool, so any worker the
#: pool forks — eagerly or lazily — inherits the entry and resolves its
#: owning engine without any shard data crossing a pipe.  References are
#: weak: the registry must not keep an abandoned engine (and its worker
#: pool and shard data) alive — dropping the last user reference triggers
#: ``__del__`` → :meth:`ParallelEngine.close`.  Inside a forked worker the
#: weak reference still resolves, because the fork snapshot retains the
#: parent's strong references from the moment of the fork.
_ENGINE_REGISTRY: "weakref.WeakValueDictionary[int, ParallelEngine]" = (
    weakref.WeakValueDictionary()
)
_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class ShardTiming:
    """Wall-clock seconds one shard spent on one query."""

    sid: int
    seconds: float


@dataclass(frozen=True)
class ParallelEvaluation(Evaluation):
    """An :class:`Evaluation` carrying per-shard timing attribution.

    ``elapsed_seconds`` is the slowest shard's time (the parallel critical
    path); ``statistics.response_time`` sums the shards' times (the total
    work performed); ``shard_timings`` breaks that total down per shard.
    An answer served from the result cache carries no shard timings — no
    shard ran.
    """

    shard_timings: tuple[ShardTiming, ...] = ()


@dataclass
class _RangePartial:
    """One shard's contribution to a range query."""

    result: QueryResult
    statistics: EvaluationStatistics
    elapsed_seconds: float


@dataclass
class _NNPartial:
    """One shard's per-draw nearest-neighbour winners."""

    oids: np.ndarray
    distances: np.ndarray
    statistics: EvaluationStatistics
    elapsed_seconds: float


def _pool_entry(token: int, kind: str, sid: int, items: list) -> list:
    """Pool task: run one shard's routed queries inside a forked worker."""
    return _ENGINE_REGISTRY[token]._execute_shard(kind, sid, items)


class ParallelEngine:
    """Evaluates workloads across the shards of a :class:`ShardedDatabase`.

    Drop-in compatible with :class:`ImpreciseQueryEngine` for the query
    surface (``evaluate`` / ``evaluate_many`` / ``config`` / database
    properties), so a :class:`~repro.core.session.Session` can swap one in
    transparently.  ``workers=1`` (the default) executes the routed shard
    batches serially in-process; ``workers > 1`` fans them out over forked
    worker processes.
    """

    def __init__(
        self,
        *,
        point_db: ShardedDatabase | None = None,
        uncertain_db: ShardedDatabase | None = None,
        config: EngineConfig | None = None,
        workers: int | None = None,
    ) -> None:
        if point_db is None and uncertain_db is None:
            raise ValueError("the engine needs at least one sharded database to query")
        if point_db is not None and point_db.kind != "points":
            raise ValueError("point_db must be a ShardedDatabase of kind 'points'")
        if uncertain_db is not None and uncertain_db.kind != "uncertain":
            raise ValueError("uncertain_db must be a ShardedDatabase of kind 'uncertain'")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._point_db = point_db
        self._uncertain_db = uncertain_db
        config = config if config is not None else EngineConfig()
        if config.draw_plan == "stream":
            # Sharded execution is only well-defined under a position- or
            # content-keyed plan: the streaming plan ties draws to batch
            # composition, which no shard can reproduce.  (stream + cache is
            # already rejected by EngineConfig itself.)
            config = config.with_overrides(draw_plan="per_oid")
        self._config = config
        self._config_fingerprint = config.fingerprint()
        self._workers = 1 if workers is None else int(workers)
        self._query_seq = 0
        self._token = next(_TOKENS)
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> EngineConfig:
        """The engine configuration (draw plan never ``"stream"``)."""
        return self._config

    @property
    def point_db(self) -> ShardedDatabase | None:
        """The sharded point-object database, if any."""
        return self._point_db

    @property
    def uncertain_db(self) -> ShardedDatabase | None:
        """The sharded uncertain-object database, if any."""
        return self._uncertain_db

    @property
    def workers(self) -> int:
        """Configured worker-process count (1 = serial in-process)."""
        return self._workers

    def close(self) -> None:
        """Shut down the worker pool (if any) and deregister the engine."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        _ENGINE_REGISTRY.pop(self._token, None)

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # Last-resort cleanup so engines dropped without close() (e.g. a
        # discarded sharded Session) release their worker processes.
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Query) -> Evaluation:
        """Evaluate one query across the shards it routes to."""
        return self.evaluate_many([query])[0]

    def evaluate_many(self, queries: Iterable[Query | UpdateBatch]) -> list[Evaluation]:
        """Evaluate a workload shard-parallel, preserving input order.

        Each query is routed to the shards its window can touch, the routed
        per-shard batches run through the shared staged pipeline (one
        pipeline per shard), and the partial results are merged.  Queries
        whose window misses every shard return empty evaluations without
        touching any worker; queries answerable from the result cache are
        served in the parent without routing any shard work at all.

        An :class:`~repro.core.updates.UpdateBatch` may be interleaved with
        the queries: it is applied at exactly its position in the stream
        (earlier queries see the old data, later ones the new) and produces
        no :class:`Evaluation`.  Updates consume no query sequence numbers,
        so the surrounding queries' per-oid Monte-Carlo draws are unaffected
        — a live-updated sharded database answers bitwise-identically to a
        from-scratch rebuild of the same final collection.
        """
        evaluations: list[Evaluation] = []
        for kind, payload in partition_workload(queries):
            if kind == "updates":
                self.apply_updates(payload)
            else:
                evaluations.extend(self._run_query_batch(payload))
        return evaluations

    # ------------------------------------------------------------------ #
    # Cache stage (parent-side)
    # ------------------------------------------------------------------ #
    def _cache_key(self, query: Query, kind: str, shards: list[Shard]) -> Hashable:
        """The sharded cache key: structure version + routed epoch vector.

        Only the *routed* shards' epochs participate, so a mutation in a
        shard the query never touches leaves the entry reachable.  The
        structure version guards against ``(sid, epoch)`` collisions across
        wholesale database replacements (re-splits restart epochs at zero).
        """
        database = self._require(kind)
        scope = (
            "shards",
            kind,
            database.uid,
            database.version,
            tuple((shard.sid, shard.database.epoch) for shard in shards),
        )
        return (scope, query_cache_key(query), self._config_fingerprint)

    def _run_query_batch(self, batch: list[Query]) -> list[Evaluation]:
        """Consult the cache, then route, execute and merge the misses."""
        base_seq = self._query_seq
        self._query_seq += len(batch)
        cache = self._config.cache

        evaluations: list[Evaluation | None] = [None] * len(batch)
        fill_keys: dict[int, Hashable] = {}
        tasks: dict[tuple[str, int], list[tuple[int, int, Query]]] = {}
        for position, query in enumerate(batch):
            seq = base_seq + position
            kind = "points" if self._targets_points(query) else "uncertain"
            shards = self._route(query)
            if cache is not None:
                started = time.perf_counter()
                key = self._cache_key(query, kind, shards)
                entry = cache.lookup(key, query.issuer)
                if entry is not None:
                    result, stats = entry.materialise()
                    evaluations[position] = ParallelEvaluation(
                        query=query,
                        result=result,
                        statistics=stats,
                        elapsed_seconds=time.perf_counter() - started,
                        shard_timings=(),
                    )
                    continue
                fill_keys[position] = key
            for shard in shards:
                tasks.setdefault((kind, shard.sid), []).append((position, seq, query))

        partials: dict[int, list[tuple[int, _RangePartial | _NNPartial]]] = {}
        for position, (sid, payload) in self._execute(tasks):
            partials.setdefault(position, []).append((sid, payload))

        for position, query in enumerate(batch):
            if evaluations[position] is not None:
                continue
            merged = self._merge(query, partials.get(position, []))
            key = fill_keys.get(position)
            if key is not None and fill_allowed(self._config.draw_plan, merged.statistics):
                cache.store(key, query.issuer, merged.result, merged.statistics)
            evaluations[position] = merged
        return evaluations

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def _recycle_pool(self) -> None:
        """Retire forked workers whose memory snapshot predates a mutation.

        Pool workers inherit the shard data via fork; a mutation in the
        parent is invisible to already-forked children, so the pool is shut
        down and the next parallel batch forks fresh workers that see the
        updated shards.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _mutation_db(self, target: str | None) -> ShardedDatabase:
        return pick_mutation_database(self._point_db, self._uncertain_db, target)

    def insert(self, obj: PointObject | UncertainObject):
        """Insert one object into its owning shard (chosen by nearest cover).

        Returns the stored object.  Like every mutation, this recycles the
        forked worker pool so no worker serves a pre-mutation snapshot.
        """
        self._recycle_pool()
        if isinstance(obj, PointObject):
            return self._require("points").insert(obj)
        if isinstance(obj, UncertainObject):
            return self._require("uncertain").insert(obj)
        raise TypeError(
            f"expected a PointObject or UncertainObject, got {type(obj).__name__}"
        )

    def delete(self, oid: int, *, target: str | None = None):
        """Remove one object from its owning shard; returns the removed object."""
        self._recycle_pool()
        return self._mutation_db(target).delete(oid)

    def move(
        self,
        oid: int,
        *,
        x: float | None = None,
        y: float | None = None,
        pdf=None,
        target: str | None = None,
    ):
        """Relocate one object, re-homing it across shards when needed.

        ``x``/``y`` move a point object, ``pdf`` an uncertain one.  Returns
        the stored replacement object.
        """
        self._recycle_pool()
        if resolve_move_target(x, y, pdf, target) == "points":
            return self._require("points").move(oid, x=float(x), y=float(y))
        return self._require("uncertain").move(oid, pdf=pdf)

    def apply_updates(self, batch: UpdateBatch) -> None:
        """Apply an ordered batch of mutations to the sharded databases."""
        for op in batch:
            apply_update_op(self, op)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _targets_points(query: Query) -> bool:
        return isinstance(query, NearestNeighborQuery) or query.target == "points"

    def _require(self, kind: str) -> ShardedDatabase:
        database = self._point_db if kind == "points" else self._uncertain_db
        if database is None:
            noun = "point-object" if kind == "points" else "uncertain-object"
            raise RuntimeError(f"no {noun} database configured")
        return database

    def _route(self, query: Query) -> list[Shard]:
        if isinstance(query, NearestNeighborQuery):
            return self._require("points").route_nearest(query.issuer.region)
        database = self._require("points" if query.target == "points" else "uncertain")
        # The Minkowski window is the widest filter any configuration uses
        # (the Qp-expanded-query is a subset), so routing by it is always
        # complete; shards it over-includes contribute zero candidates.
        window = minkowski_expanded_query(query.issuer.region, query.spec)
        return database.route_window(window)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _execute_shard(
        self, kind: str, sid: int, items: list[tuple[int, int, Query]]
    ) -> list[tuple[int, tuple[int, _RangePartial | _NNPartial]]]:
        """Run one shard's routed queries; returns ``(position, (sid, payload))``.

        Range queries run through the shard's staged pipeline
        (:meth:`ShardedDatabase.execute_on_shard`) — the identical stage
        runner the serial engine uses.  Nearest-neighbour queries use the
        shard pipeline's sampler in per-draw mode, because their merge is a
        per-draw argmin across shards rather than an answer-list union.
        """
        database = self._require(kind)
        results: list[tuple[int, tuple[int, _RangePartial | _NNPartial]]] = []
        range_items = [item for item in items if isinstance(item[2], RangeQuery)]
        nn_items = [item for item in items if isinstance(item[2], NearestNeighborQuery)]
        if range_items:
            evaluations = database.execute_on_shard(
                sid, [(seq, query) for _, seq, query in range_items], self._config
            )
            for (position, _, _), evaluation in zip(range_items, evaluations):
                payload = _RangePartial(
                    result=evaluation.result,
                    statistics=evaluation.statistics,
                    elapsed_seconds=evaluation.elapsed_seconds,
                )
                results.append((position, (sid, payload)))
        for position, seq, query in nn_items:
            samples = query.samples if query.samples is not None else DEFAULT_NN_SAMPLES
            token = resolve_draw_token(self._config, query, seq)
            draws = nn_query_draws(
                query.issuer.pdf, samples, self._config.rng_seed, token
            )
            nn_engine = database.shard_pipeline(sid, self._config).nearest_engine(samples)
            oids, distances, stats = nn_engine.per_draw_winners(draws)
            payload = _NNPartial(
                oids=oids,
                distances=distances,
                statistics=stats,
                elapsed_seconds=stats.response_time,
            )
            results.append((position, (sid, payload)))
        return results

    def _warm_snapshots(self) -> None:
        """Materialise every shard's columnar snapshot in the parent.

        Fork-inherited snapshots are shared copy-on-write with all workers;
        without this, every worker would rebuild them after the fork.
        """
        for database in (self._point_db, self._uncertain_db):
            if database is None:
                continue
            for shard in database.non_empty_shards():
                shard.database.columnar()

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is not None:
            return self._pool
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            warnings.warn(
                "the 'fork' start method is unavailable on this platform; "
                "ParallelEngine falls back to serial in-process execution",
                RuntimeWarning,
                stacklevel=3,
            )
            self._workers = 1
            return None
        if self._config.vectorized:
            self._warm_snapshots()
        _ENGINE_REGISTRY[self._token] = self
        self._pool = ProcessPoolExecutor(max_workers=self._workers, mp_context=context)
        return self._pool

    def _execute(
        self, tasks: dict[tuple[str, int], list[tuple[int, int, Query]]]
    ) -> list[tuple[int, tuple[int, _RangePartial | _NNPartial]]]:
        ordered = sorted(tasks.items())
        if self._workers > 1 and len(ordered) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                futures = [
                    pool.submit(_pool_entry, self._token, kind, sid, items)
                    for (kind, sid), items in ordered
                ]
                return [result for future in futures for result in future.result()]
        return [
            result
            for (kind, sid), items in ordered
            for result in self._execute_shard(kind, sid, items)
        ]

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    @staticmethod
    def _merge_statistics(parts: list[EvaluationStatistics]) -> EvaluationStatistics:
        merged = EvaluationStatistics()
        for stats in parts:
            merged.response_time += stats.response_time
            merged.candidates_examined += stats.candidates_examined
            merged.probability_computations += stats.probability_computations
            merged.monte_carlo_samples += stats.monte_carlo_samples
            for strategy, count in stats.pruned.items():
                merged.record_pruned(strategy, count)
            merged.io.merge(stats.io)
        return merged

    def _merge(
        self, query: Query, contributions: list[tuple[int, _RangePartial | _NNPartial]]
    ) -> ParallelEvaluation:
        contributions = sorted(contributions, key=lambda item: item[0])
        timings = tuple(
            ShardTiming(sid=sid, seconds=payload.elapsed_seconds)
            for sid, payload in contributions
        )
        if isinstance(query, NearestNeighborQuery):
            result, stats = self._merge_nearest(query, contributions)
        elif len(contributions) == 1:
            # One contributing shard: its result and statistics *are* the
            # query's (already sorted / already per-query), no copying needed.
            _, payload = contributions[0]
            result = payload.result
            stats = payload.statistics
        else:
            answers = []
            for _, payload in contributions:
                answers.extend(payload.result.answers)
            result = QueryResult(answers=answers)
            result.sort()
            stats = self._merge_statistics(
                [payload.statistics for _, payload in contributions]
            )
        stats.results_returned = len(result)
        elapsed = max((timing.seconds for timing in timings), default=0.0)
        return ParallelEvaluation(
            query=query,
            result=result,
            statistics=stats,
            elapsed_seconds=elapsed,
            shard_timings=timings,
        )

    def _merge_nearest(
        self, query: NearestNeighborQuery, contributions: list[tuple[int, _NNPartial]]
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Combine per-shard per-draw winners into global win probabilities.

        For every draw of the shared per-query plan the globally nearest
        shard winner is kept (ties broken towards the smaller oid, the same
        order answers are ranked in); win counts over the draws then divide
        into probabilities exactly as in the single-shard engine.
        """
        stats = self._merge_statistics(
            [payload.statistics for _, payload in contributions]
        )
        result = QueryResult()
        if not contributions:
            return result, stats
        samples = query.samples if query.samples is not None else DEFAULT_NN_SAMPLES
        # The per-shard passes each draw the full plan, so the sample count
        # is a per-query quantity, not a per-shard one.
        stats.monte_carlo_samples = samples
        best_oids = contributions[0][1].oids.copy()
        best_distances = contributions[0][1].distances.copy()
        for _, payload in contributions[1:]:
            closer = payload.distances < best_distances
            tie = (payload.distances == best_distances) & (payload.oids < best_oids)
            take = closer | tie
            best_oids[take] = payload.oids[take]
            best_distances[take] = payload.distances[take]
        winners, counts = np.unique(best_oids, return_counts=True)
        stats.candidates_examined = int(winners.size)
        for oid, count in zip(winners, counts):
            probability = float(count) / samples
            if probability > 0.0 and probability >= query.threshold:
                result.add(int(oid), probability)
        result.sort()
        return result, stats
